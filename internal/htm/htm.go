// Package htm simulates a best-effort hardware transactional memory with a
// single-global-lock software fallback — the hybrid-TM substrate the paper's
// introduction surveys ([Calciu et al.], [Dalessandro et al., Hybrid NOrec])
// and whose semantic extension the conclusions name as future work.
//
// The simulation captures the three properties of real best-effort HTM that
// matter for algorithm studies:
//
//   - capacity limits: a hardware transaction tracking more than Capacity
//     locations aborts (L1-sized read/write sets);
//   - spurious aborts: a hardware commit fails with probability SpuriousPct
//     even without conflicts (interrupts, TLB misses);
//   - lock subscription: hardware transactions snapshot the fallback lock
//     and cannot commit while a fallback transaction runs.
//
// After MaxHWRetries hardware failures a transaction acquires the fallback
// lock and runs irrevocably. The semantic variant (S-HTM) applies the
// paper's primitives to the hardware path: conditionals become facts and
// increments defer, shrinking the tracked set — which, under capacity
// limits, also means *fewer capacity aborts*, an effect unique to HTM.
package htm

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"semstm/internal/core"
)

// Tuning defaults.
const (
	// DefaultCapacity bounds the tracked locations of one hardware attempt.
	DefaultCapacity = 64
	// DefaultMaxHWRetries is how many hardware failures precede fallback.
	DefaultMaxHWRetries = 4
	// DefaultSpuriousPct is the per-commit spurious failure probability (%).
	DefaultSpuriousPct = 0.5
)

// Write-record ring geometry (progressive engine only, DESIGN.md §13).
//
// Every committed writer stamps its write-set into the ring slot of its
// commit epoch before releasing the sequence lock. That is the simulation of
// hardware conflict detection: real HTM aborts a speculating transaction only
// when a cache line it touched is invalidated, not whenever *any* core
// commits. The uninstrumented fast path keeps a local read signature (two
// bits per first-touch, no read-set) and, when the epoch moves, tests each
// recorded write of the intervening commits for Bloom *membership* in that
// signature — all-misses means the moved epoch can be adopted and the attempt
// survives. Membership (both bits set) rather than signature intersection
// (any bit shared) is deliberate: write-sets here are a handful of locations,
// and an intersection test's false-positive rate is per *bit* — at a
// 100-location read footprint it would fire on several percent of disjoint
// commits, drowning the true conflict rate — while membership of an exact
// write record is per *location*, (2n/m)^2 ~ 0.1% at the same density. The
// false positives that remain are indistinguishable from the false sharing of
// a line-granular conflict detector: a safe, spurious-looking hardware abort.
const (
	// sigWords x 64 = 4096 read-signature bits, sized for the simulated
	// capacity bound: a fast-path attempt may track up to Capacity locations
	// at two bits each while keeping the membership false-positive rate per
	// recorded write around 0.1% (the sizing argument RingSTM makes for its
	// filters, adapted to membership tests).
	sigWords = 64
	sigBits  = sigWords * 64
	// sigCap is the largest write-set recorded exactly; a wider commit (or
	// an irrevocable fallback, whose in-place writes were never buffered)
	// stamps sigWide instead, which every behind-the-epoch fast attempt
	// treats as a certain conflict.
	sigCap  = 64
	sigWide = ^uint64(0)
	// sigSlots is the ring depth in epochs. A reader that has fallen more
	// than sigMaxLag epochs behind can no longer prove its slots were not
	// recycled and must abort conservatively — the simulated analogue of a
	// hardware transaction outliving its speculation resources.
	sigSlots  = 256
	sigMaxLag = sigSlots - 1
	// sigIDMix is the Fibonacci multiplier hashing variable identities into
	// bit positions (same constant the core sets use for their filters).
	sigIDMix = 0x9E3779B97F4A7C15
)

// sigBitsFor returns the two Bloom bit positions for a variable identity.
func sigBitsFor(id uint64) (uint64, uint64) {
	h := id * sigIDMix
	return h >> 52, (h >> 40) & (sigBits - 1) // top 12 bits, next 12 bits
}

// Global is the state shared by all transactions of one HTM runtime: a
// timestamped sequence lock serving both as the commit serializer of
// hardware transactions and as the fallback lock they subscribe to. The lock
// is subscribed (polled) by every hardware attempt, so it lives on its own
// cache line; the fallback/abort tallies are bumped on the failure paths and
// must not drag the lock's line with them.
type Global struct {
	seq       atomic.Uint64
	_         core.PadWord
	fallbacks atomic.Uint64
	hwAborts  atomic.Uint64

	// sigs is the per-epoch write-record ring of the progressive engine:
	// slot (epoch>>1) & (sigSlots-1) holds the write-set of the commit that
	// released the sequence lock at that (even) epoch. Word 0 of a slot is
	// the record length (or sigWide for an unknown write-set); words 1..n
	// are the written variable identities, exact — a typical commit writes
	// a handful of locations, so both stamping and scanning touch a few
	// words. Entries past the length are stale leftovers from the slot's
	// previous occupant and are never read. Stamped while the lock is held,
	// so slot stores never race each other; readers guard against mid-scan
	// recycling by re-checking the lock after the scan. Classic
	// (non-progressive) transactions never consult it.
	sigs [sigSlots][1 + sigCap]atomic.Uint64

	// readers is the privatization-barrier surface (DESIGN.md §14): each
	// descriptor publishes its subscribed snapshot in a slot here, and a
	// privatizing committer drains the table to its release timestamp.
	readers core.ReaderTable

	// privatizing counts in-flight privatizing commits. While non-zero the
	// progressive engine demotes new fast-path attempts to the instrumented
	// middle path: the uninstrumented fast path publishes no snapshot and
	// cannot be drained, so it must sit out the barrier window.
	privatizing atomic.Int64
}

// NewGlobal returns a fresh runtime state.
func NewGlobal() *Global { return &Global{} }

// Fallbacks reports how many transactions took the software fallback.
func (g *Global) Fallbacks() uint64 { return g.fallbacks.Load() }

// HWAborts reports how many hardware attempts failed (conflict, capacity,
// or spurious).
func (g *Global) HWAborts() uint64 { return g.hwAborts.Load() }

// Sequence exposes the sequence-lock value (tests and shard clock probes).
func (g *Global) Sequence() uint64 { return g.seq.Load() }

// Quiescent verifies the fallback/sequence lock is not leaked: at a
// quiescent point it must be even (no irrevocable transaction running).
func (g *Global) Quiescent() error {
	if s := g.seq.Load(); s&1 != 0 {
		return fmt.Errorf("htm: fallback lock leaked (seq=%d)", s)
	}
	return nil
}

// stampSig records the write-set for the commit that will release the
// sequence lock at the (even) value release. Called with the lock held: the
// slot overwrite cannot race another stamp, and the release store that makes
// the epoch observable happens after, so any reader that sees the new epoch
// also sees its record.
func (g *Global) stampSig(release uint64, ws *core.WriteSet) {
	slot := &g.sigs[(release>>1)&(sigSlots-1)]
	es := ws.Entries()
	if len(es) > sigCap {
		slot[0].Store(sigWide)
		return
	}
	for i, e := range es {
		slot[1+i].Store(e.Var.ID())
	}
	slot[0].Store(uint64(len(es)))
}

// stampSigAll records the unknown-write-set sentinel: an irrevocable fallback
// wrote memory in place, so its write-set was never buffered and every
// concurrent fast attempt that read anything must conservatively abort.
func (g *Global) stampSigAll(release uint64) {
	g.sigs[(release>>1)&(sigSlots-1)][0].Store(sigWide)
}

// Tx is one hybrid transaction descriptor.
type Tx struct {
	g        *Global
	semantic bool
	rng      *rand.Rand

	// Tunables, set before first use.
	Capacity     int
	MaxHWRetries int
	SpuriousPct  float64

	snapshot    uint64
	fp          *core.FaultPlan // nil unless fault injection is armed
	reads       *core.SemSet
	exprs       *core.ExprSet
	writes      *core.WriteSet
	waiter      core.Waiter
	slot        *core.ReaderSlot // published snapshot (privatization)
	lastW       uint64           // release timestamp of the last commit
	hwFailures  int
	irrevocable bool
	stats       core.TxStats
}

// NewTx returns a descriptor bound to g; semantic selects S-HTM.
func NewTx(g *Global, semantic bool, seed int64) *Tx {
	return &Tx{
		g:            g,
		semantic:     semantic,
		rng:          rand.New(rand.NewSource(seed)),
		Capacity:     DefaultCapacity,
		MaxHWRetries: DefaultMaxHWRetries,
		SpuriousPct:  DefaultSpuriousPct,
		reads:        core.NewSemSet(),
		exprs:        core.NewExprSet(),
		writes:       core.NewWriteSet(),
		slot:         g.readers.NewSlot(),
	}
}

// NewEpoch begins a new logical transaction: the hardware-failure budget
// resets. The runtime calls it once per Atomically invocation.
func (tx *Tx) NewEpoch() { tx.hwFailures = 0 }

// Start begins an attempt: hardware speculation while the failure budget
// lasts, otherwise the irrevocable fallback under the global lock.
func (tx *Tx) Start() {
	tx.reads.Reset()
	tx.exprs.Reset()
	tx.writes.Reset()
	tx.stats.Reset()
	if tx.hwFailures > tx.MaxHWRetries {
		// Fallback: acquire the sequence lock (make it odd) and run
		// irrevocably; hardware commits are blocked meanwhile.
		tx.waiter.Reset()
		for {
			s := tx.g.seq.Load()
			if s&1 == 0 && tx.g.seq.CompareAndSwap(s, s+1) {
				break
			}
			tx.waiter.Wait()
			tx.stats.SpinWaits++
		}
		tx.irrevocable = true
		tx.g.fallbacks.Add(1)
		return
	}
	tx.irrevocable = false
	tx.inject(core.SiteStart)
	tx.waiter.Reset()
	for {
		s := tx.g.seq.Load()
		if s&1 == 0 {
			// Pin-then-recheck (DESIGN.md §14): the pin must be visible
			// before the snapshot can be trusted, or a privatizing committer
			// could drain between the load and the pin publication.
			tx.slot.Pin(s)
			if tx.g.seq.Load() == s {
				tx.snapshot = s
				return
			}
			continue
		}
		tx.waiter.Wait() // subscribe: wait out fallback transactions
		tx.stats.SpinWaits++
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *Tx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// inject fires the fault plan at site on the hardware path only; injected
// faults count as hardware failures, so MaxHWRetries of them still drive the
// transaction into the irrevocable lock fallback.
func (tx *Tx) inject(site core.FaultSite) {
	if tx.fp != nil && !tx.irrevocable && tx.fp.SpuriousHit(site) {
		tx.abortHW(core.ReasonSpurious)
	}
}

// abortHW records a hardware failure and unwinds the attempt.
func (tx *Tx) abortHW(reason core.Reason) {
	tx.hwFailures++
	tx.g.hwAborts.Add(1)
	core.AbortWith(reason)
}

// checkCapacity aborts the hardware attempt when the tracked set exceeds
// the simulated hardware buffers.
func (tx *Tx) checkCapacity() {
	if tx.reads.Len()+tx.exprs.Len()+tx.writes.Len() > tx.Capacity {
		tx.abortHW(core.ReasonCapacity)
	}
}

func (tx *Tx) validate() uint64 {
	tx.waiter.Reset()
	for {
		time := tx.g.seq.Load()
		if time&1 != 0 {
			tx.waiter.Wait()
			tx.stats.SpinWaits++
			continue
		}
		if tx.fp != nil && tx.fp.ValidationFail() {
			tx.abortHW(core.ReasonValidation)
		}
		tx.stats.Validations++
		tx.stats.ValEntries += uint64(tx.reads.Len() + tx.exprs.Len())
		if ok, why := tx.reads.BrokenReason(); !ok {
			tx.abortHW(why)
		}
		if !tx.exprs.HoldsNow() {
			tx.abortHW(core.ReasonCmpFlip)
		}
		if time == tx.g.seq.Load() {
			// Forward pin movement: validated at time, so no longer a zombie
			// with respect to any commit at or before it.
			tx.slot.Pin(time)
			return time
		}
	}
}

func (tx *Tx) readValid(v *core.Var) int64 {
	val := v.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		val = v.Load()
	}
	return val
}

func (tx *Tx) raw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		val := tx.readValid(v)
		tx.reads.Append(v, core.OpEQ, val)
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// Read implements TM_READ: direct in the fallback, tracked in hardware.
func (tx *Tx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	if tx.irrevocable {
		return v.Load()
	}
	tx.inject(core.SiteRead)
	if e := tx.writes.Get(v); e != nil {
		return tx.raw(v, e)
	}
	val := tx.readValid(v)
	tx.reads.Append(v, core.OpEQ, val)
	tx.checkCapacity()
	return val
}

// Write implements TM_WRITE: in place in the fallback, buffered in hardware.
func (tx *Tx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	if tx.irrevocable {
		v.StoreNT(val)
		return
	}
	tx.writes.PutWrite(v, val)
	tx.checkCapacity()
}

// Cmp implements the semantic conditional; under S-HTM a fact occupies one
// tracked slot just like a read, but survives benign concurrent changes.
func (tx *Tx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	if !tx.semantic {
		return op.Eval(tx.Read(v), operand)
	}
	tx.stats.Compares++
	if tx.irrevocable {
		return op.Eval(v.Load(), operand)
	}
	tx.inject(core.SiteCmp)
	if e := tx.writes.Get(v); e != nil {
		return op.Eval(tx.raw(v, e), operand)
	}
	val := tx.readValid(v)
	result := op.Eval(val, operand)
	tx.reads.AppendOutcome(v, op, operand, result)
	tx.checkCapacity()
	return result
}

// CmpVars implements the address–address conditional.
func (tx *Tx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	if !tx.semantic {
		operand := tx.Read(b)
		return op.Eval(tx.Read(a), operand)
	}
	if tx.irrevocable {
		tx.stats.Compares++
		return op.Eval(a.Load(), b.Load())
	}
	// One indexed lookup per operand (see the WriteSet Bloom fast path).
	if eb := tx.writes.Get(b); eb != nil || tx.writes.Get(a) != nil {
		var operand int64
		if eb != nil {
			operand = tx.raw(b, eb)
		} else {
			tx.stats.Reads++
			operand = tx.readValid(b)
			tx.reads.Append(b, core.OpEQ, operand)
		}
		return tx.Cmp(a, op, operand)
	}
	tx.stats.Compares++
	va, vb := a.Load(), b.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		va, vb = a.Load(), b.Load()
	}
	result := op.Eval(va, vb)
	tx.reads.AppendOutcomeVar(a, op, b, result)
	tx.checkCapacity()
	return result
}

// Inc implements the semantic increment; deferring it keeps the hardware
// read-set small (no tracked read at all).
func (tx *Tx) Inc(v *core.Var, delta int64) {
	if !tx.semantic {
		tx.Write(v, tx.Read(v)+delta)
		return
	}
	tx.stats.Incs++
	if tx.irrevocable {
		v.StoreNT(v.Load() + delta)
		return
	}
	tx.writes.PutInc(v, delta)
	tx.checkCapacity()
}

// CmpSum implements the arithmetic-expression conditional natively in the
// hardware path (one tracked fact instead of one tracked read per addend).
func (tx *Tx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	delegate := !tx.semantic
	if !delegate && !tx.irrevocable {
		for _, v := range vars {
			if tx.writes.Get(v) != nil {
				delegate = true
				break
			}
		}
	}
	if delegate {
		var sum int64
		for _, v := range vars {
			sum += tx.Read(v)
		}
		return op.Eval(sum, rhs)
	}
	tx.stats.Compares++
	sum := sumLoads(vars)
	if tx.irrevocable {
		return op.Eval(sum, rhs)
	}
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		sum = sumLoads(vars)
	}
	result := op.Eval(sum, rhs)
	tx.exprs.AppendSum(vars, op, rhs, result)
	tx.checkCapacity()
	return result
}

func sumLoads(vars []*core.Var) int64 {
	var sum int64
	for _, v := range vars {
		sum += v.Load()
	}
	return sum
}

// CmpAny implements the composed condition natively in the hardware path.
func (tx *Tx) CmpAny(conds []core.Cond) bool {
	if !tx.semantic {
		for _, c := range conds {
			if c.Op.Eval(tx.Read(c.Var), c.Operand) {
				return true
			}
		}
		return false
	}
	tx.stats.Compares++
	if tx.irrevocable {
		return evalAny(conds)
	}
	for _, c := range conds {
		if tx.writes.Get(c.Var) != nil {
			tx.stats.Compares-- // per-clause path re-counts
			for _, cc := range conds {
				if tx.Cmp(cc.Var, cc.Op, cc.Operand) {
					return true
				}
			}
			return false
		}
	}
	result := evalAny(conds)
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		result = evalAny(conds)
	}
	tx.exprs.AppendOr(conds, result)
	tx.checkCapacity()
	return result
}

func evalAny(conds []core.Cond) bool {
	for _, c := range conds {
		if c.Eval() {
			return true
		}
	}
	return false
}

// Commit publishes the transaction: fallback commits release the lock;
// hardware commits may fail spuriously, then validate and publish under the
// sequence lock exactly like a (bounded) NOrec writer.
func (tx *Tx) Commit() {
	if tx.irrevocable {
		tx.lastW = tx.g.seq.Add(1) // release: odd -> even
		tx.irrevocable = false
		tx.slot.Clear()
		return
	}
	tx.inject(core.SiteCommit)
	if tx.SpuriousPct > 0 && tx.rng.Float64()*100 < tx.SpuriousPct {
		tx.abortHW(core.ReasonSpurious)
	}
	if tx.writes.Len() == 0 {
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		// A concurrent commit (or fallback) moved the lock: adopt the newer
		// timestamp by revalidating at it.
		tx.stats.ClockAdopts++
		tx.snapshot = tx.validate()
	}
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the commit window under the lock
	}
	for _, e := range tx.writes.Entries() {
		if e.Kind == core.EntryInc {
			e.Var.StoreNT(e.Var.Load() + e.Val)
		} else {
			e.Var.StoreNT(e.Val)
		}
	}
	tx.g.seq.Store(tx.snapshot + 2)
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}

// CommitPrivatize is Commit with privatization-barrier semantics
// (core.Privatizer): the commit is bracketed by the privatizing counter so
// the progressive engine's uninstrumented fast path sits out the window, and
// after linearization every reader subscribed to a pre-commit snapshot is
// waited out. An abort unwinds like Commit and performs no drain.
func (tx *Tx) CommitPrivatize() {
	tx.g.privatizing.Add(1)
	defer tx.g.privatizing.Add(-1)
	tx.Commit()
	tx.g.readers.Drain(tx.lastW)
}

// PrivatizeBarrier re-runs the drain of the last successful Commit.
func (tx *Tx) PrivatizeBarrier() {
	tx.g.privatizing.Add(1)
	defer tx.g.privatizing.Add(-1)
	tx.g.readers.Drain(tx.lastW)
}

// Cleanup releases the fallback lock if an irrevocable attempt unwound via a
// user panic (irrevocable attempts never abort on their own), and
// un-publishes the reader slot.
func (tx *Tx) Cleanup() {
	if tx.irrevocable {
		tx.g.seq.Add(1)
		tx.irrevocable = false
	}
	tx.slot.Clear()
}

// AttemptStats exposes the per-attempt operation counters.
func (tx *Tx) AttemptStats() *core.TxStats { return &tx.stats }
