// The uninstrumented fast path of the progressive hybrid engine.
//
// A fast-path attempt keeps no read-set, no semantic facts, and no per-orec
// state. Its entire instrumentation budget is:
//
//   - fallback-lock subscription at Start (shared with every path),
//   - one load of the conflict-detection epoch per tracked location, and
//   - two bits folded into a thread-local read signature per first touch.
//
// The epoch is the engine's sequence lock: every committed writer bumps it
// and stamps its write-set into the per-epoch ring (Global.sigs) before
// releasing. The conflict check runs *after* the value load — a writer makes
// the lock word odd before it stores any value, so observing the even
// snapshot after the load proves the load pre-dated any concurrent publish.
// When the epoch has moved, the attempt tests each recorded write of the
// intervening commits for membership in its read signature (fastAdopt):
// all-misses prove no committed writer touched anything this attempt read,
// so the new epoch is adopted and speculation continues — the simulated
// equivalent of hardware conflict detection, which only kills a transaction
// whose *own* cache lines were invalidated, not one that merely ran
// concurrently with a commit. A membership hit (true conflict or Bloom false
// positive, the analogue of cache-line false sharing) aborts with
// ReasonHWConflict and lets the demotion policy decide whether to retry here
// or fall to the instrumented middle path.
package htm

import (
	"semstm/internal/core"
)

// sigAdd folds v into the attempt's local read signature. Called before the
// epoch check of every fast-path first touch, so by the time fastAdopt
// consults the signature it already covers the value just loaded. The
// explicit index masks are provably redundant (a bit position is < sigBits)
// and exist to spare the barrier two bounds checks.
func (tx *HyTx) sigAdd(v *core.Var) {
	b1, b2 := sigBitsFor(v.ID())
	tx.rsig[(b1>>6)&(sigWords-1)] |= 1 << (b1 & 63)
	tx.rsig[(b2>>6)&(sigWords-1)] |= 1 << (b2 & 63)
}

// fastAdopt brings the attempt's snapshot up to the current epoch, aborting
// (ReasonHWConflict) if any intervening commit recorded a write to a location
// in the attempt's read signature — or if the attempt has fallen so far
// behind that ring slots may have been recycled (sigMaxLag).
func (tx *HyTx) fastAdopt() { tx.fastAdoptLimit(0) }

// fastAdoptLimit is fastAdopt with a bounded wait on the sequence lock; the
// two-phase commit path uses the bound to stay deadlock-free while holding
// its own shard's lock (see slow.go). limit <= 0 waits forever.
func (tx *HyTx) fastAdoptLimit(limit int) {
	tx.waiter.Reset()
	rounds := 0
	for {
		cur := tx.g.seq.Load()
		if cur&1 != 0 {
			rounds++
			if limit > 0 && rounds > limit {
				tx.abortPath(core.ReasonHWConflict)
			}
			tx.waiter.Wait() // subscribe: wait out the lock holder
			tx.stats.SpinWaits++
			continue
		}
		if cur == tx.snapshot {
			return
		}
		if (cur-tx.snapshot)/2 > sigMaxLag {
			tx.abortPath(core.ReasonHWConflict) // ring slots may be recycled
		}
		hit := false
		for e := tx.snapshot + 2; e <= cur && !hit; e += 2 {
			slot := &tx.g.sigs[(e>>1)&(sigSlots-1)]
			n := slot[0].Load()
			if n > sigCap { // sigWide: unknown write-set
				hit = tx.fastReads > 0 || tx.writes.Len() > 0
				continue
			}
			for i := uint64(0); i < n; i++ {
				b1, b2 := sigBitsFor(slot[1+i].Load())
				if tx.rsig[(b1>>6)&(sigWords-1)]&(1<<(b1&63)) != 0 &&
					tx.rsig[(b2>>6)&(sigWords-1)]&(1<<(b2&63)) != 0 {
					hit = true
					break
				}
			}
		}
		if tx.g.seq.Load() != cur {
			continue // a commit landed mid-scan; slots may be torn — rescan
		}
		if hit {
			tx.abortPath(core.ReasonHWConflict)
		}
		tx.stats.ClockAdopts++
		tx.snapshot = cur
		// Forward pin movement: every intervening commit was proved
		// signature-disjoint from the reads so far, so this attempt is no
		// zombie with respect to any commit at or before cur.
		tx.slot.Pin(cur)
		return
	}
}

// fastLoad returns v's value consistent with the attempt's snapshot,
// adopting moved epochs whose commits are signature-disjoint from the reads
// so far. Callers fold v into the read signature before calling, so the
// adopt covers the value just loaded.
func (tx *HyTx) fastLoad(v *core.Var) int64 {
	val := v.Load()
	for tx.g.seq.Load() != tx.snapshot {
		tx.fastAdopt()
		val = v.Load()
	}
	return val
}

// fastCapacity models the hardware tracking limit. The fast path has no
// read-set, but real HTM still tracks every speculatively accessed line, so
// the simulated budget counts distinct first-touches (fastReads) plus
// buffered writes.
func (tx *HyTx) fastCapacity() {
	if tx.fastReads+tx.writes.Len() > tx.Capacity {
		tx.abortPath(core.ReasonHWCapacity)
	}
}

// fastRaw resolves a read that hit the write buffer. A deferred increment
// must be promoted: the caller needs the resolved value, which requires the
// current memory value — one more tracked location.
func (tx *HyTx) fastRaw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		tx.sigAdd(v)
		val := tx.fastLoad(v)
		tx.fastReads++
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// fastRead is the uninstrumented read barrier: load, signature fold, one
// epoch check, no bookkeeping beyond the capacity tally. A repeat of the
// immediately preceding location (the common shape of a probe step, which
// interrogates one cell twice) is the same tracked line: it needs neither a
// new signature fold nor a capacity charge, only the load and epoch check.
func (tx *HyTx) fastRead(v *core.Var) int64 {
	tx.inject(core.SiteRead)
	if e := tx.writes.Get(v); e != nil {
		return tx.fastRaw(v, e)
	}
	if v != tx.lastFast {
		tx.sigAdd(v)
		tx.lastFast = v
		tx.fastReads++
		tx.fastCapacity()
	}
	return tx.fastLoad(v)
}

// fastCommit publishes a fast-path attempt: acquire the sequence lock,
// adopting any epochs that moved underneath (signature-checked like any
// other adopt), stamp this commit's write signature, publish, release.
// Read-only attempts commit immediately — their reads were each validated
// at the (possibly advanced) snapshot, which is their serialization point.
func (tx *HyTx) fastCommit() {
	if tx.writes.Len() == 0 {
		tx.noteFast(false)
		tx.stats.HWFastCommits++
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		tx.fastAdopt()
	}
	tx.g.stampSig(tx.snapshot+2, tx.writes)
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the commit window under the lock
	}
	tx.publish()
	tx.g.seq.Store(tx.snapshot + 2)
	tx.noteFast(false)
	tx.stats.HWFastCommits++
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}
