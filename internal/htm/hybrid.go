// Progressive hybrid-TM descriptor (DESIGN.md §13).
//
// HyTx runs each logical transaction down a three-path ladder, following the
// structure "On the Cost of Concurrency in Hybrid Transactional Memory"
// (PAPERS.md) proves necessary — progressive HyTM cannot shed *all*
// instrumentation, but it can concentrate it on the paths that need it:
//
//	fast    the uninstrumented hardware path (fast.go): no read-set, no
//	        facts, no orecs. Every barrier pays one load of the
//	        conflict-detection epoch (the sequence lock this package already
//	        uses as fallback-lock subscription) plus two bits folded into a
//	        thread-local read signature. Concurrent commits stamp write
//	        signatures into a per-epoch ring; a moved epoch aborts the
//	        attempt (ReasonHWConflict) only when the signatures intersect —
//	        the simulated analogue of hardware conflict detection, which
//	        kills a transaction whose own cache lines were invalidated, not
//	        one that merely ran concurrently with a commit.
//	middle  the instrumented hardware path (middle.go): per-location
//	        metadata — semantic facts, expression sets, deferred increments
//	        — so validation can adopt a moved epoch instead of aborting,
//	        and so the attempt runs concurrently with software slow-path
//	        transactions without mutual exclusion. Still hardware: subject
//	        to capacity limits and spurious aborts.
//	slow    the software path (slow.go): the same instrumented barriers
//	        minus the hardware failure modes — no capacity bound, no
//	        spurious aborts — i.e. an S-NOrec-style STM attempt. After
//	        SlowRetries software failures a classic runtime falls back to
//	        the irrevocable global lock; sharded runtimes keep retrying
//	        revocably (core.TxConfig.NoIrrevocable) and inherit progress
//	        from the runtime escalation gate.
//
// Demotion is decided by the typed abort reasons: ReasonHWCapacity demotes
// immediately (the footprint cannot shrink by retrying), ReasonHWConflict
// and ReasonSpurious demote once the per-path retry budget is spent.
// Promotion back to the fast path happens per logical transaction: NewEpoch
// resets the ladder — unless the telemetry below overrides it.
//
// On top of the per-transaction ladder sits a sticky, telemetry-driven tier
// choice (the Invyswell/Riegel mode-switching idea): each descriptor tracks
// its recent fast-path attempt outcomes, and when more than a third of the
// last stickyWindow attempts failed, the next stickyTxs logical transactions
// start directly on the instrumented middle path instead of burning the fast
// budget on a regime the fast path is losing (conflict storms, footprints at
// the capacity edge). After stickyTxs transactions the fast path is probed
// again with a fresh window, so a passing contention storm does not
// permanently pin the descriptor to the middle tier. The state is
// per-descriptor — one thread's telemetry, no shared counters, no atomics.
package htm

import (
	"math/rand"

	"semstm/internal/core"
)

// hyPath identifies which tier of the progressive engine an attempt runs on.
type hyPath uint8

const (
	pathFast hyPath = iota
	pathMiddle
	pathSlow
)

// Per-path retry budget defaults: how many conflict/spurious failures a path
// absorbs before the transaction demotes to the next tier.
const (
	DefaultFastRetries   = 3
	DefaultMiddleRetries = 4
	DefaultSlowRetries   = 4
)

// Telemetry-ladder tuning: the fast path is disqualified for stickyTxs
// logical transactions when it failed more than a third of the last
// stickyWindow attempts. The window is small so a conflict storm is detected
// within a few transactions; the sticky span is large so the periodic
// re-probe (one window of possibly-failing fast attempts per span) stays in
// the low percents of total work.
const (
	stickyWindow = 16
	stickyTxs    = 512
)

// HyTx is one progressive hybrid transaction descriptor.
type HyTx struct {
	g   *Global
	rng *rand.Rand

	// Tunables, set before first use.
	Capacity      int
	FastRetries   int
	MiddleRetries int
	SlowRetries   int
	SpuriousPct   float64
	// noFast starts every logical transaction on the middle path — the
	// HyTM-mid ablation engine, which is also the fully-instrumented cell
	// the hybrid gate compares the fast path against. noFallback disables
	// the irrevocable lock fallback (sharded runtimes, see slow.go).
	noFast     bool
	noFallback bool

	// Demotion state of the current logical transaction (NewEpoch resets).
	path         hyPath
	pathFailures int // conflict/spurious failures on the current path

	// Sticky-tier telemetry (see the package comment): outcome counts of the
	// current fast-attempt window and the remaining span of a sticky middle
	// start. Per-descriptor, reset only by the window roll.
	fastWindow    int  // fast attempts observed in the current window
	fastFails     int  // how many of them failed
	stickyLeft    int  // logical transactions still starting on the middle path
	stickyPending bool // count this logical transaction's sticky start once

	snapshot  uint64
	fp        *core.FaultPlan  // nil unless fault injection is armed
	reads     *core.SemSet     // middle/slow paths only
	exprs     *core.ExprSet    // middle/slow paths only
	writes    *core.WriteSet   // all paths buffer writes
	fastReads int              // fast path's tracked-location tally (no read-set exists)
	lastFast  *core.Var        // fast path's last first-touch (repeat-probe dedup)
	rsig      [sigWords]uint64 // fast path's read signature (fast.go)
	waiter    core.Waiter
	slot      *core.ReaderSlot // published snapshot (privatization)
	lastW     uint64           // release timestamp of the last commit

	irrevocable bool
	locked      bool // two-phase Prepare..Publish window (sharded commits)
	stats       core.TxStats
}

// NewHyTx returns a progressive hybrid descriptor bound to g; noFast forces
// the instrumented middle path (the HyTM-mid ablation).
func NewHyTx(g *Global, noFast bool, seed int64) *HyTx {
	tx := &HyTx{
		g:             g,
		rng:           rand.New(rand.NewSource(seed)),
		Capacity:      DefaultCapacity,
		FastRetries:   DefaultFastRetries,
		MiddleRetries: DefaultMiddleRetries,
		SlowRetries:   DefaultSlowRetries,
		SpuriousPct:   DefaultSpuriousPct,
		noFast:        noFast,
		reads:         core.NewSemSet(),
		exprs:         core.NewExprSet(),
		writes:        core.NewWriteSet(),
		slot:          g.readers.NewSlot(),
	}
	tx.NewEpoch()
	return tx
}

// NewEpoch begins a new logical transaction: back to the top of the path
// ladder with a fresh failure budget — or, when the fast path's recent
// telemetry disqualifies it, directly onto the instrumented middle path.
// The runtime calls it once per Atomically invocation.
func (tx *HyTx) NewEpoch() {
	switch {
	case tx.noFast:
		tx.path = pathMiddle
	case tx.stickyLeft > 0:
		tx.stickyLeft--
		tx.path = pathMiddle
		tx.stickyPending = true
	default:
		tx.path = pathFast
	}
	tx.pathFailures = 0
}

// noteFast feeds one fast-path attempt outcome into the sticky-tier
// telemetry. When the window fills with more than a third failures, the
// descriptor starts its next stickyTxs logical transactions on the middle
// path (NewEpoch consumes stickyLeft).
func (tx *HyTx) noteFast(failed bool) {
	tx.fastWindow++
	if failed {
		tx.fastFails++
	}
	if tx.fastWindow >= stickyWindow {
		if tx.fastFails*3 > tx.fastWindow {
			tx.stickyLeft = stickyTxs
		}
		tx.fastWindow, tx.fastFails = 0, 0
	}
}

// Start begins an attempt on whatever path the demotion state selected:
// hardware speculation subscribes to the sequence lock; an exhausted slow
// path acquires it irrevocably (classic runtimes only).
func (tx *HyTx) Start() {
	tx.reads.Reset()
	tx.exprs.Reset()
	tx.writes.Reset()
	tx.stats.Reset()
	if tx.stickyPending {
		tx.stickyPending = false
		tx.stats.StickyStarts = 1 // first attempt of a sticky logical tx
	}
	tx.fastReads = 0
	tx.locked = false
	if tx.path == pathFast && tx.g.privatizing.Load() != 0 {
		// A privatizing commit is in flight: sit the barrier window out on
		// the instrumented middle path (htm.go: Global.privatizing). The
		// ladder state is untouched — the next logical transaction probes the
		// fast path again.
		tx.path = pathMiddle
	}
	if tx.path == pathFast {
		tx.lastFast = nil
		tx.rsig = [sigWords]uint64{}
	}
	if tx.path == pathSlow && !tx.noFallback && tx.pathFailures > tx.SlowRetries {
		tx.startFallback()
		return
	}
	tx.irrevocable = false
	tx.inject(core.SiteStart)
	tx.waiter.Reset()
	for {
		s := tx.g.seq.Load()
		if s&1 == 0 {
			// Pin-then-recheck (DESIGN.md §14): the pin must be visible
			// before the snapshot can be trusted, or a privatizing committer
			// could drain between the load and the pin publication.
			tx.slot.Pin(s)
			if tx.g.seq.Load() == s {
				tx.snapshot = s
				return
			}
			continue
		}
		tx.waiter.Wait() // subscribe: wait out fallback transactions
		tx.stats.SpinWaits++
	}
}

// SetFaultPlan arms or disarms deterministic fault injection.
func (tx *HyTx) SetFaultPlan(p *core.FaultPlan) { tx.fp = p }

// inject fires the fault plan at site on the revocable paths; injected
// faults run through the same demotion state machine as real failures, so a
// storm of them still walks the transaction down the ladder.
func (tx *HyTx) inject(site core.FaultSite) {
	if tx.fp != nil && !tx.irrevocable && tx.fp.SpuriousHit(site) {
		tx.abortPath(core.ReasonSpurious)
	}
}

// budget is the current path's retry allowance for non-capacity failures.
func (tx *HyTx) budget() int {
	switch tx.path {
	case pathFast:
		return tx.FastRetries
	case pathMiddle:
		return tx.MiddleRetries
	default:
		return tx.SlowRetries
	}
}

// abortPath records a failure of the current path, applies the demotion
// policy, and unwinds the attempt with the typed reason. Capacity overflow
// demotes immediately — the same footprint cannot fit the same buffers on
// retry — while conflicts and spurious failures demote only once the path's
// budget is spent. On the slow path the counter instead feeds the
// irrevocable-fallback threshold checked by Start.
func (tx *HyTx) abortPath(reason core.Reason) {
	if tx.path != pathSlow {
		tx.g.hwAborts.Add(1)
	}
	if tx.path == pathFast {
		tx.noteFast(true)
	}
	tx.pathFailures++
	if tx.path != pathSlow &&
		(reason == core.ReasonHWCapacity || tx.pathFailures > tx.budget()) {
		tx.path++
		tx.pathFailures = 0
	}
	core.AbortWith(reason)
}

// conflict unwinds a validation-style failure: the hardware paths type every
// such failure as the demotion-driving ReasonHWConflict (hardware reports
// that the transaction lost, not why), while the software slow path keeps
// the classical taxonomy (validation vs cmp-flip vs locked metadata).
func (tx *HyTx) conflict(why core.Reason) {
	if tx.path != pathSlow {
		tx.abortPath(core.ReasonHWConflict)
	}
	tx.abortPath(why)
}

// Read implements TM_READ on the current path.
func (tx *HyTx) Read(v *core.Var) int64 {
	tx.stats.Reads++
	if tx.irrevocable {
		return v.Load()
	}
	if tx.path == pathFast {
		return tx.fastRead(v)
	}
	return tx.instRead(v)
}

// Write implements TM_WRITE: in place when irrevocable, buffered otherwise.
func (tx *HyTx) Write(v *core.Var, val int64) {
	tx.stats.Writes++
	if tx.irrevocable {
		v.StoreNT(val)
		return
	}
	tx.writes.PutWrite(v, val)
	if tx.path == pathFast {
		tx.fastCapacity()
	} else {
		tx.checkCapacity()
	}
}

// Cmp implements the semantic conditional. The instrumented paths record a
// fact; the fast path has nothing to record a fact into, so it degenerates
// to an uninstrumented read plus a local comparison (counted as a read, like
// the non-semantic baselines' delegation).
func (tx *HyTx) Cmp(v *core.Var, op core.Op, operand int64) bool {
	if tx.irrevocable {
		tx.stats.Compares++
		return op.Eval(v.Load(), operand)
	}
	if tx.path == pathFast {
		tx.stats.Reads++
		return op.Eval(tx.fastRead(v), operand)
	}
	tx.stats.Compares++
	return tx.instCmp(v, op, operand)
}

// CmpVars implements the address–address conditional.
func (tx *HyTx) CmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	if tx.irrevocable {
		tx.stats.Compares++
		return op.Eval(a.Load(), b.Load())
	}
	if tx.path == pathFast {
		tx.stats.Reads += 2
		operand := tx.fastRead(b)
		return op.Eval(tx.fastRead(a), operand)
	}
	return tx.instCmpVars(a, op, b)
}

// Inc implements the semantic increment. Every path defers it: the write-set
// entry publishes as an atomic read-modify-write under the sequence lock, so
// even the uninstrumented fast path gets read-free increments.
func (tx *HyTx) Inc(v *core.Var, delta int64) {
	tx.stats.Incs++
	if tx.irrevocable {
		v.StoreNT(v.Load() + delta)
		return
	}
	tx.writes.PutInc(v, delta)
	if tx.path == pathFast {
		tx.fastCapacity()
	} else {
		tx.checkCapacity()
	}
}

// CmpSum implements the arithmetic-expression conditional: a composed fact
// on the instrumented paths, a plain uninstrumented evaluation on the fast
// path.
func (tx *HyTx) CmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	if tx.irrevocable {
		tx.stats.Compares++
		return op.Eval(sumLoads(vars), rhs)
	}
	if tx.path == pathFast {
		var sum int64
		for _, v := range vars {
			tx.stats.Reads++
			sum += tx.fastRead(v)
		}
		return op.Eval(sum, rhs)
	}
	return tx.instCmpSum(op, rhs, vars)
}

// CmpAny implements the composed condition.
func (tx *HyTx) CmpAny(conds []core.Cond) bool {
	if tx.irrevocable {
		tx.stats.Compares++
		return evalAny(conds)
	}
	if tx.path == pathFast {
		for _, c := range conds {
			tx.stats.Reads++
			if c.Op.Eval(tx.fastRead(c.Var), c.Operand) {
				return true
			}
		}
		return false
	}
	return tx.instCmpAny(conds)
}

// Commit publishes the transaction on the current path. The hardware paths
// (fast, middle) may fail spuriously first — the simulated interrupt/TLB
// noise of real best-effort HTM; the software slow path may not.
func (tx *HyTx) Commit() {
	if tx.irrevocable {
		// The fallback wrote in place: its write-set is unknown, so its
		// epoch's signature is all-ones (every concurrent fast reader must
		// conservatively abort).
		tx.g.stampSigAll(tx.g.seq.Load() + 1)
		tx.lastW = tx.g.seq.Add(1) // release: odd -> even
		tx.irrevocable = false
		tx.slot.Clear()
		return
	}
	tx.inject(core.SiteCommit)
	if tx.path != pathSlow && tx.SpuriousPct > 0 && tx.rng.Float64()*100 < tx.SpuriousPct {
		tx.abortPath(core.ReasonSpurious)
	}
	if tx.path == pathFast {
		tx.fastCommit()
		return
	}
	tx.instCommit()
}

// publish applies the buffered write-set (deferred increments resolve here,
// under the sequence lock).
func (tx *HyTx) publish() {
	for _, e := range tx.writes.Entries() {
		if e.Kind == core.EntryInc {
			e.Var.StoreNT(e.Var.Load() + e.Val)
		} else {
			e.Var.StoreNT(e.Val)
		}
	}
}

// countCommit attributes a successful commit to its path. On sharded
// runtimes a cross-shard commit counts each participating shard's path, so
// the per-path tallies can exceed the transaction count by the cross-shard
// participation factor (exactly like WALAppends).
func (tx *HyTx) countCommit() {
	switch tx.path {
	case pathFast:
		tx.noteFast(false)
		tx.stats.HWFastCommits++
	case pathMiddle:
		tx.stats.HWMiddleCommits++
	}
}

// Cleanup releases whatever the failed attempt still holds: the fallback
// lock of an irrevocable attempt unwound by a user panic, or the sequence
// lock of a two-phase participant whose cross-shard commit aborted after
// Prepare (reverting the lock word restores the pre-Prepare epoch — no
// memory was written yet).
func (tx *HyTx) Cleanup() {
	if tx.irrevocable {
		tx.g.stampSigAll(tx.g.seq.Load() + 1) // in-place writes, set unknown
		tx.g.seq.Add(1)
		tx.irrevocable = false
	}
	if tx.locked {
		tx.g.seq.Store(tx.snapshot)
		tx.locked = false
	}
	tx.slot.Clear()
}

// CommitPrivatize is Commit with privatization-barrier semantics
// (core.Privatizer): the commit is bracketed by the privatizing counter —
// demoting new fast-path attempts to the instrumented middle path for the
// window — and after linearization every reader subscribed to a pre-commit
// snapshot is waited out. An abort unwinds like Commit and performs no drain.
func (tx *HyTx) CommitPrivatize() {
	tx.g.privatizing.Add(1)
	defer tx.g.privatizing.Add(-1)
	tx.Commit()
	tx.g.readers.Drain(tx.lastW)
}

// PrivatizeBarrier re-runs the drain of the last successful Commit/Publish.
func (tx *HyTx) PrivatizeBarrier() {
	tx.g.privatizing.Add(1)
	defer tx.g.privatizing.Add(-1)
	tx.g.readers.Drain(tx.lastW)
}

// AttemptStats exposes the per-attempt operation counters.
func (tx *HyTx) AttemptStats() *core.TxStats { return &tx.stats }
