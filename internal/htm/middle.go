// The instrumented middle path of the progressive hybrid engine — and the
// shared barrier layer for the software slow path.
//
// Middle-path attempts keep the full lightweight per-location metadata of
// the S-HTM design: a semantic read-set (facts instead of raw values where
// the primitive allows), an expression set for composed conditions, and a
// deferred-increment write buffer. That metadata is what lets the middle
// path coexist with software transactions without mutual exclusion — when
// the conflict-detection epoch moves, the attempt *revalidates and adopts*
// the new epoch instead of aborting, exactly like a NOrec reader. The
// hardware character survives in two places: the capacity bound still
// applies (checkCapacity), and every validation-style failure is typed
// ReasonHWConflict for the demotion policy (conflict in hybrid.go).
//
// The slow path runs these same barriers with the hardware failure modes
// switched off: no capacity bound, classical abort reasons, no spurious
// commit failures.
package htm

import "semstm/internal/core"

// checkCapacity models the hardware tracking limit on the middle path; the
// software slow path is unbounded.
func (tx *HyTx) checkCapacity() {
	if tx.path == pathMiddle &&
		tx.reads.Len()+tx.exprs.Len()+tx.writes.Len() > tx.Capacity {
		tx.abortPath(core.ReasonHWCapacity)
	}
}

// validate re-checks the read- and expression-sets at a stable epoch and
// returns it. Failures unwind through conflict (typed per path).
func (tx *HyTx) validate() uint64 {
	return tx.validateLimit(0)
}

// validateLimit is validate with a bounded wait on the sequence lock; the
// two-phase commit path uses the bound to stay deadlock-free while holding
// its own shard's lock (see slow.go). limit <= 0 waits forever.
func (tx *HyTx) validateLimit(limit int) uint64 {
	tx.waiter.Reset()
	rounds := 0
	for {
		time := tx.g.seq.Load()
		if time&1 != 0 {
			rounds++
			if limit > 0 && rounds > limit {
				tx.conflict(core.ReasonOrecLocked)
			}
			tx.waiter.Wait()
			tx.stats.SpinWaits++
			continue
		}
		if tx.fp != nil && tx.fp.ValidationFail() {
			tx.conflict(core.ReasonValidation)
		}
		tx.stats.Validations++
		tx.stats.ValEntries += uint64(tx.reads.Len() + tx.exprs.Len())
		if ok, why := tx.reads.BrokenReason(); !ok {
			tx.conflict(why)
		}
		if !tx.exprs.HoldsNow() {
			tx.conflict(core.ReasonCmpFlip)
		}
		if time == tx.g.seq.Load() {
			// Forward pin movement: validated at time, so no longer a zombie
			// with respect to any commit at or before it.
			tx.slot.Pin(time)
			return time
		}
	}
}

// readValid returns a value consistent with the current snapshot, extending
// the snapshot when the epoch moved.
func (tx *HyTx) readValid(v *core.Var) int64 {
	val := v.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		val = v.Load()
	}
	return val
}

// instRaw resolves a read that hit the write buffer, promoting deferred
// increments (the resolved value needs the memory value, which must be
// tracked from here on).
func (tx *HyTx) instRaw(v *core.Var, e *core.WriteEntry) int64 {
	if e.Kind == core.EntryInc {
		val := tx.readValid(v)
		tx.reads.Append(v, core.OpEQ, val)
		tx.writes.Promote(v, e.Val+val)
		tx.stats.Promotes++
	}
	return e.Val
}

// instRead is the instrumented read barrier (middle and slow paths).
func (tx *HyTx) instRead(v *core.Var) int64 {
	tx.inject(core.SiteRead)
	if e := tx.writes.Get(v); e != nil {
		return tx.instRaw(v, e)
	}
	val := tx.readValid(v)
	tx.reads.Append(v, core.OpEQ, val)
	tx.checkCapacity()
	return val
}

// instCmp records the conditional as a semantic fact: one tracked slot, and
// benign concurrent changes that preserve the outcome do not abort.
func (tx *HyTx) instCmp(v *core.Var, op core.Op, operand int64) bool {
	tx.inject(core.SiteCmp)
	if e := tx.writes.Get(v); e != nil {
		return op.Eval(tx.instRaw(v, e), operand)
	}
	val := tx.readValid(v)
	result := op.Eval(val, operand)
	tx.reads.AppendOutcome(v, op, operand, result)
	tx.checkCapacity()
	return result
}

// instCmpVars implements the address–address conditional.
func (tx *HyTx) instCmpVars(a *core.Var, op core.Op, b *core.Var) bool {
	// One indexed lookup per operand (see the WriteSet Bloom fast path).
	if eb := tx.writes.Get(b); eb != nil || tx.writes.Get(a) != nil {
		var operand int64
		if eb != nil {
			operand = tx.instRaw(b, eb)
		} else {
			tx.stats.Reads++
			operand = tx.readValid(b)
			tx.reads.Append(b, core.OpEQ, operand)
		}
		tx.stats.Compares++
		return tx.instCmp(a, op, operand)
	}
	tx.stats.Compares++
	va, vb := a.Load(), b.Load()
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		va, vb = a.Load(), b.Load()
	}
	result := op.Eval(va, vb)
	tx.reads.AppendOutcomeVar(a, op, b, result)
	tx.checkCapacity()
	return result
}

// instCmpSum records the arithmetic-expression conditional as one composed
// fact (one tracked slot instead of one per addend) unless an addend is
// buffered, in which case it degrades to per-var reads.
func (tx *HyTx) instCmpSum(op core.Op, rhs int64, vars []*core.Var) bool {
	for _, v := range vars {
		if tx.writes.Get(v) != nil {
			var sum int64
			for _, vv := range vars {
				tx.stats.Reads++
				sum += tx.instRead(vv)
			}
			return op.Eval(sum, rhs)
		}
	}
	tx.stats.Compares++
	sum := sumLoads(vars)
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		sum = sumLoads(vars)
	}
	result := op.Eval(sum, rhs)
	tx.exprs.AppendSum(vars, op, rhs, result)
	tx.checkCapacity()
	return result
}

// instCmpAny records the composed condition as one OR fact, degrading to
// per-clause facts when a clause variable is buffered.
func (tx *HyTx) instCmpAny(conds []core.Cond) bool {
	for _, c := range conds {
		if tx.writes.Get(c.Var) != nil {
			for _, cc := range conds {
				tx.stats.Compares++
				if tx.instCmp(cc.Var, cc.Op, cc.Operand) {
					return true
				}
			}
			return false
		}
	}
	tx.stats.Compares++
	result := evalAny(conds)
	for tx.snapshot != tx.g.seq.Load() {
		tx.snapshot = tx.validate()
		result = evalAny(conds)
	}
	tx.exprs.AppendOr(conds, result)
	tx.checkCapacity()
	return result
}

// instCommit publishes a middle- or slow-path attempt: validate-and-adopt
// until the CAS serializes the writer, publish, release. This is the NOrec
// writer protocol — which is exactly why middle-path hardware attempts and
// slow-path software attempts commit concurrently without extra exclusion.
func (tx *HyTx) instCommit() {
	if tx.writes.Len() == 0 {
		tx.countCommit()
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		// A concurrent commit (or fallback) moved the lock: adopt the newer
		// timestamp by revalidating at it.
		tx.stats.ClockAdopts++
		tx.snapshot = tx.validate()
	}
	tx.g.stampSig(tx.snapshot+2, tx.writes) // fast readers check this epoch
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the commit window under the lock
	}
	tx.publish()
	tx.g.seq.Store(tx.snapshot + 2)
	tx.countCommit()
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}
