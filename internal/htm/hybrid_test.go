package htm

import (
	"testing"

	"semstm/internal/core"
	"semstm/internal/txtest"
)

// newQuietHyTx returns a progressive descriptor with spurious aborts
// disabled so tests are deterministic.
func newQuietHyTx(g *Global, noFast bool) *HyTx {
	tx := NewHyTx(g, noFast, 1)
	tx.SpuriousPct = 0
	return tx
}

// bump commits a writing transaction through a second descriptor, moving the
// conflict-detection epoch under any in-flight attempt.
func bump(t *testing.T, g *Global, v *core.Var) {
	t.Helper()
	other := newQuietHyTx(g, false)
	other.NewEpoch()
	if !txtest.MustCommit(other, func() { other.Write(v, other.Read(v)+1) }) {
		t.Fatal("bump commit must succeed")
	}
}

// TestHybridFastPathUninstrumented verifies a solo fast-path commit succeeds
// with zero instrumentation state and is attributed to the fast path.
func TestHybridFastPathUninstrumented(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(1)
	tx := newQuietHyTx(g, false)
	tx.NewEpoch()
	if !txtest.MustCommit(tx, func() {
		if got := tx.Read(v); got != 1 {
			t.Fatalf("Read = %d", got)
		}
		if tx.reads.Len() != 0 || tx.exprs.Len() != 0 {
			t.Fatalf("fast path recorded metadata: %d reads, %d exprs",
				tx.reads.Len(), tx.exprs.Len())
		}
		tx.Write(v, 2)
	}) {
		t.Fatal("solo fast-path commit must succeed")
	}
	if v.Load() != 2 {
		t.Fatalf("memory = %d", v.Load())
	}
	if tx.stats.HWFastCommits != 1 || tx.stats.HWMiddleCommits != 0 {
		t.Fatalf("path attribution: fast=%d middle=%d",
			tx.stats.HWFastCommits, tx.stats.HWMiddleCommits)
	}
	if tx.path != pathFast {
		t.Fatalf("path = %d after clean commit", tx.path)
	}
}

// TestHybridNoFastStartsOnMiddle pins the HyTM-mid ablation: the fast path
// is never entered.
func TestHybridNoFastStartsOnMiddle(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := newQuietHyTx(g, true)
	tx.NewEpoch()
	if tx.path != pathMiddle {
		t.Fatalf("noFast descriptor starts on path %d", tx.path)
	}
	if !txtest.MustCommit(tx, func() { tx.Write(v, 7) }) {
		t.Fatal("middle-path commit must succeed")
	}
	if tx.stats.HWFastCommits != 0 || tx.stats.HWMiddleCommits != 1 {
		t.Fatalf("path attribution: fast=%d middle=%d",
			tx.stats.HWFastCommits, tx.stats.HWMiddleCommits)
	}
}

// TestHybridConflictDemotesFastToMiddle drives fast-path attempts into
// hw-conflict aborts until the budget demotes the transaction, and verifies
// the typed reason, the middle path's survival of the same interference, and
// the ladder reset on NewEpoch. The interference is a commit that writes the
// very variable the attempt tested: on the fast path the conditional is a
// raw read whose signature the writer's intersects, so the attempt dies; on
// the middle path the same conditional is a semantic fact ("v > -5") that
// the bump preserves, so validation adopts the moved epoch instead.
func TestHybridConflictDemotesFastToMiddle(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	w := core.NewVar(0)
	tx := newQuietHyTx(g, false)
	tx.FastRetries = 2
	tx.NewEpoch()

	fails := 0
	for tx.path == pathFast {
		tx.Start()
		if !tx.Cmp(v, core.OpGT, -5) {
			t.Fatal("v > -5 must hold")
		}
		bump(t, g, v) // overlapping write: signatures intersect
		aborted := txtest.Aborted(func() { _ = tx.Read(w) })
		if !aborted {
			t.Fatal("fast-path read after a conflicting commit must abort")
		}
		tx.Cleanup()
		fails++
		if fails > 10 {
			t.Fatal("never demoted")
		}
	}
	if fails != tx.FastRetries+1 {
		t.Fatalf("demoted after %d failures, budget %d", fails, tx.FastRetries)
	}
	if tx.path != pathMiddle {
		t.Fatalf("path = %d, want middle", tx.path)
	}

	// The instrumented middle path records the conditional as a fact the
	// same interference preserves: revalidate-and-adopt instead of abort.
	tx.Start()
	if !tx.Cmp(v, core.OpGT, -5) {
		t.Fatal("v > -5 must hold")
	}
	bump(t, g, v)
	if !txtest.MustCommitRest(tx, func() {
		_ = tx.Read(w)
		tx.Write(w, 1)
	}) {
		t.Fatal("middle path must absorb a benign epoch move")
	}
	if tx.stats.HWMiddleCommits != 1 {
		t.Fatalf("HWMiddleCommits = %d", tx.stats.HWMiddleCommits)
	}

	tx.NewEpoch()
	if tx.path != pathFast || tx.pathFailures != 0 {
		t.Fatalf("NewEpoch kept path=%d failures=%d", tx.path, tx.pathFailures)
	}
}

// TestHybridFastPathSurvivesDisjointCommit pins the signature-based conflict
// detection of fast.go: a concurrent commit that writes nothing the attempt
// read moves the epoch but does not kill the attempt — it adopts the new
// epoch and still commits on the fast path. (Pre-signature engines aborted
// every in-flight fast attempt on any commit.)
func TestHybridFastPathSurvivesDisjointCommit(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	w := core.NewVar(0)
	tx := newQuietHyTx(g, false)
	tx.NewEpoch()
	if !txtest.MustCommit(tx, func() {
		if got := tx.Read(w); got != 0 {
			t.Fatalf("Read = %d", got)
		}
		bump(t, g, v) // disjoint writer: epoch moves, signatures do not meet
		if got := tx.Read(w); got != 0 {
			t.Fatalf("Read after disjoint commit = %d", got)
		}
		tx.Write(w, 1)
	}) {
		t.Fatal("fast path must survive a signature-disjoint commit")
	}
	if tx.path != pathFast || tx.stats.HWFastCommits != 1 {
		t.Fatalf("path=%d fast commits=%d", tx.path, tx.stats.HWFastCommits)
	}
	if tx.stats.ClockAdopts == 0 {
		t.Fatal("the moved epoch must be adopted, not ignored")
	}
	if v.Load() != 1 || w.Load() != 1 {
		t.Fatalf("memory v=%d w=%d", v.Load(), w.Load())
	}
}

// TestHybridFastPathAbortsOnIrrevocableRelease pins the all-ones signature
// of the irrevocable fallback: its write-set is unknown, so any fast attempt
// that read anything must abort when it observes the release.
func TestHybridFastPathAbortsOnIrrevocableRelease(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	w := core.NewVar(0)
	tx := newQuietHyTx(g, false)
	tx.NewEpoch()
	tx.Start()
	_ = tx.Read(w)

	// Drive a second descriptor into the irrevocable fallback and commit it.
	other := newQuietHyTx(g, false)
	other.FastRetries = 0
	other.MiddleRetries = 0
	other.SlowRetries = 0
	other.NewEpoch()
	other.pathFailures = 1
	other.path = pathSlow
	if !txtest.MustCommit(other, func() { other.Write(v, 1) }) {
		t.Fatal("irrevocable commit must succeed")
	}
	if g.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, fallback never engaged", g.Fallbacks())
	}

	if !txtest.Aborted(func() { _ = tx.Read(w) }) {
		t.Fatal("fast attempt must abort after an irrevocable release")
	}
	tx.Cleanup()
	if err := g.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridCapacityDemotesImmediately verifies ReasonHWCapacity skips the
// retry budget on both hardware paths: fast → middle on the first overflow,
// middle → slow on the next, and the slow path commits the same footprint
// (it is unbounded).
func TestHybridCapacityDemotesImmediately(t *testing.T) {
	g := NewGlobal()
	vars := core.NewVars(64, 0)
	tx := newQuietHyTx(g, false)
	tx.Capacity = 8
	tx.NewEpoch()

	body := func() {
		for i, v := range vars {
			tx.Write(v, int64(i)+1)
		}
	}
	for i := 0; i < 2; i++ {
		if txtest.MustCommit(tx, body) {
			t.Fatalf("attempt %d: overflow must abort", i)
		}
	}
	if tx.path != pathSlow {
		t.Fatalf("path = %d after two capacity overflows, want slow", tx.path)
	}
	if !txtest.MustCommit(tx, body) {
		t.Fatal("unbounded slow path must commit the footprint")
	}
	if tx.irrevocable || g.Fallbacks() != 0 {
		t.Fatal("slow path committed revocably, no fallback expected")
	}
	if vars[63].Load() != 64 {
		t.Fatalf("memory = %d", vars[63].Load())
	}
	if tx.stats.HWFastCommits != 0 || tx.stats.HWMiddleCommits != 0 {
		t.Fatal("slow-path commit must not count as a hardware commit")
	}
}

// TestHybridSlowPathFallsBackIrrevocably exhausts the slow path's budget
// with injected faults and verifies the classic-lock fallback engages — and
// that NoIrrevocable (the sharded configuration) suppresses it.
func TestHybridSlowPathFallsBackIrrevocably(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(0)
	tx := newQuietHyTx(g, false)
	tx.FastRetries = 0
	tx.MiddleRetries = 0
	tx.SlowRetries = 1
	tx.NewEpoch()

	// Every revocable attempt dies at commit until the fallback engages.
	tx.SetFaultPlan(core.NewFaultPlan(1).WithSpurious(core.SiteCommit, 100))
	attempts := 0
	for !txtest.MustCommit(tx, func() { tx.Write(v, 1) }) {
		attempts++
		if attempts > 20 {
			t.Fatal("never fell back")
		}
	}
	if g.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d", g.Fallbacks())
	}
	if v.Load() != 1 {
		t.Fatalf("memory = %d", v.Load())
	}
	if err := g.Quiescent(); err != nil {
		t.Fatal(err)
	}

	// The sharded configuration never goes irrevocable: the same storm keeps
	// the descriptor revocable (progress would come from the runtime gate,
	// which disarms fault plans on escalated attempts).
	tx2 := newQuietHyTx(g, false)
	tx2.FastRetries = 0
	tx2.MiddleRetries = 0
	tx2.SlowRetries = 1
	tx2.noFallback = true
	tx2.NewEpoch()
	tx2.SetFaultPlan(core.NewFaultPlan(2).WithSpurious(core.SiteCommit, 100))
	for i := 0; i < 10; i++ {
		if txtest.MustCommit(tx2, func() { tx2.Write(v, 2) }) {
			t.Fatal("every attempt is faulted; commit impossible")
		}
		if tx2.irrevocable {
			t.Fatal("NoIrrevocable descriptor went irrevocable")
		}
	}
	tx2.SetFaultPlan(nil)
	if !txtest.MustCommit(tx2, func() { tx2.Write(v, 2) }) {
		t.Fatal("disarmed descriptor must commit")
	}
	if g.Fallbacks() != 1 {
		t.Fatalf("fallbacks moved to %d under NoIrrevocable", g.Fallbacks())
	}
	if err := g.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridTwoPhaseCleanupRevertsPrepare pins the sharded abort path: a
// participant whose cross-shard commit dies after Prepare must release the
// sequence lock with no memory written.
func TestHybridTwoPhaseCleanupRevertsPrepare(t *testing.T) {
	g := NewGlobal()
	v := core.NewVar(5)
	tx := newQuietHyTx(g, false)
	tx.NewEpoch()
	tx.Start()
	tx.Write(v, 9)
	tx.Prepare()
	if g.seq.Load()&1 == 0 {
		t.Fatal("Prepare must hold the sequence lock")
	}
	tx.Cleanup() // the other shard aborted
	if g.seq.Load()&1 != 0 {
		t.Fatal("Cleanup must release the sequence lock")
	}
	if v.Load() != 5 {
		t.Fatalf("memory = %d after aborted prepare", v.Load())
	}
	if err := g.Quiescent(); err != nil {
		t.Fatal(err)
	}

	// And the full two-phase commit publishes.
	tx.NewEpoch()
	tx.Start()
	tx.Write(v, 9)
	tx.Prepare()
	tx.Validate()
	tx.Publish()
	if v.Load() != 9 {
		t.Fatalf("memory = %d after publish", v.Load())
	}
	if tx.stats.HWFastCommits != 1 {
		t.Fatalf("HWFastCommits = %d", tx.stats.HWFastCommits)
	}
	if err := g.Quiescent(); err != nil {
		t.Fatal(err)
	}
}
