package htm

import "semstm/internal/core"

// engine adapts a hybrid HTM Global to the core.Engine registry interface;
// the semantic flag selects S-HTM descriptors. The engine also surfaces the
// fallback/hardware-abort tallies through the optional HTMReporter interface
// the stm facade probes for.
type engine struct {
	g        *Global
	semantic bool
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl {
	tx := NewTx(e.g, e.semantic, cfg.Seed)
	// TxConfig values are applied literally (the facade always fills them);
	// only an entirely zero HTM tuple means the caller never configured the
	// hardware and the descriptor keeps its defaults.
	if cfg.HTMCapacity != 0 || cfg.HTMRetries != 0 || cfg.HTMSpurious != 0 {
		tx.Capacity = cfg.HTMCapacity
		tx.MaxHWRetries = cfg.HTMRetries
		tx.SpuriousPct = cfg.HTMSpurious
	}
	return tx
}

func (e engine) Quiescent() error { return e.g.Quiescent() }

// Fallbacks reports how many transactions took the software fallback.
func (e engine) Fallbacks() uint64 { return e.g.Fallbacks() }

// HWAborts reports how many hardware attempts failed.
func (e engine) HWAborts() uint64 { return e.g.HWAborts() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineHTM,
		Name:         "HTM",
		DisplayOrder: 7,
		HTMBacked:    true,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:            core.EngineSHTM,
		Name:          "S-HTM",
		DisplayOrder:  8,
		Semantic:      true,
		ComposedFacts: true,
		HTMBacked:     true,
		New:           func() core.Engine { return engine{g: NewGlobal(), semantic: true} },
	})
}
