package htm

import "semstm/internal/core"

// engine adapts a hybrid HTM Global to the core.Engine registry interface;
// the semantic flag selects S-HTM descriptors. The engine also surfaces the
// fallback/hardware-abort tallies through the optional HTMReporter interface
// the stm facade probes for.
type engine struct {
	g        *Global
	semantic bool
}

func (e engine) NewTx(cfg core.TxConfig) core.TxImpl {
	tx := NewTx(e.g, e.semantic, cfg.Seed)
	// TxConfig values are applied literally (the facade always fills them);
	// only an entirely zero HTM tuple means the caller never configured the
	// hardware and the descriptor keeps its defaults.
	if cfg.HTMCapacity != 0 || cfg.HTMRetries != 0 || cfg.HTMSpurious != 0 {
		tx.Capacity = cfg.HTMCapacity
		tx.MaxHWRetries = cfg.HTMRetries
		tx.SpuriousPct = cfg.HTMSpurious
	}
	return tx
}

func (e engine) Quiescent() error { return e.g.Quiescent() }

// Fallbacks reports how many transactions took the software fallback.
func (e engine) Fallbacks() uint64 { return e.g.Fallbacks() }

// HWAborts reports how many hardware attempts failed.
func (e engine) HWAborts() uint64 { return e.g.HWAborts() }

// hyEngine adapts a progressive hybrid Global (hybrid.go) to the registry;
// noFast forces the instrumented middle path (the HyTM-mid ablation engine).
type hyEngine struct {
	g      *Global
	noFast bool
}

func (e hyEngine) NewTx(cfg core.TxConfig) core.TxImpl {
	tx := NewHyTx(e.g, e.noFast, cfg.Seed)
	// Same convention as engine.NewTx: only an entirely zero HTM tuple means
	// the caller never configured the hardware. The single retry knob feeds
	// every per-path budget — the ablation axis is instrumentation, not
	// retry asymmetry.
	if cfg.HTMCapacity != 0 || cfg.HTMRetries != 0 || cfg.HTMSpurious != 0 {
		tx.Capacity = cfg.HTMCapacity
		tx.FastRetries = cfg.HTMRetries
		tx.MiddleRetries = cfg.HTMRetries
		tx.SlowRetries = cfg.HTMRetries
		tx.SpuriousPct = cfg.HTMSpurious
	}
	tx.noFallback = cfg.NoIrrevocable
	return tx
}

func (e hyEngine) Quiescent() error { return e.g.Quiescent() }

// Fallbacks reports how many transactions took the irrevocable fallback.
func (e hyEngine) Fallbacks() uint64 { return e.g.Fallbacks() }

// HWAborts reports how many hardware-path attempts failed.
func (e hyEngine) HWAborts() uint64 { return e.g.HWAborts() }

// ClockValue exposes the engine instance's sequence-lock value — the
// per-shard "clock" the routing-isolation tests probe.
func (e hyEngine) ClockValue() uint64 { return e.g.Sequence() }

func init() {
	core.RegisterEngine(core.EngineDesc{
		ID:           core.EngineHTM,
		Name:         "HTM",
		DisplayOrder: 7,
		HTMBacked:    true,
		New:          func() core.Engine { return engine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:            core.EngineSHTM,
		Name:          "S-HTM",
		DisplayOrder:  8,
		Semantic:      true,
		ComposedFacts: true,
		HTMBacked:     true,
		New:           func() core.Engine { return engine{g: NewGlobal(), semantic: true} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:             core.EngineHyTM,
		Name:           "HyTM",
		DisplayOrder:   9,
		Semantic:       true,
		ComposedFacts:  true,
		HTMBacked:      true,
		ProgressiveHTM: true,
		TwoPhase:       true,
		New:            func() core.Engine { return hyEngine{g: NewGlobal()} },
	})
	core.RegisterEngine(core.EngineDesc{
		ID:             core.EngineHyTMMid,
		Name:           "HyTM-mid",
		DisplayOrder:   10,
		Semantic:       true,
		ComposedFacts:  true,
		HTMBacked:      true,
		ProgressiveHTM: true,
		TwoPhase:       true,
		New:            func() core.Engine { return hyEngine{g: NewGlobal(), noFast: true} },
	})
}
