// The software slow path of the progressive hybrid engine: the bottom of the
// demotion ladder, plus the decomposed two-phase commit that lets a sharded
// runtime host the engine.
//
// A slow-path attempt is an S-NOrec-style software transaction running the
// instrumented barriers of middle.go with the hardware failure modes off.
// On a classic runtime, SlowRetries software failures escalate once more to
// the irrevocable global-lock fallback (the same sequence lock, held odd),
// which cannot abort and therefore guarantees progress. Sharded runtimes
// forbid that fallback (core.TxConfig.NoIrrevocable): irrevocable attempts
// write in place, which cannot roll back when *another shard's* Prepare
// aborts a cross-shard commit. There the slow path retries revocably without
// bound and progress comes from the runtime-level escalation gate instead.
package htm

import "semstm/internal/core"

// hyTwoPhaseWaitBound bounds how many sequence-lock wait rounds a two-phase
// Prepare/Validate tolerates before giving up. A cross-shard committer holds
// its earlier shards' locks while acquiring later ones; an unbounded wait
// there could deadlock against a committer arriving in the opposite order on
// a different runtime topology. Aborting after a bounded wait (and releasing
// everything via Cleanup) restores progress.
const hyTwoPhaseWaitBound = 128

// startFallback begins an irrevocable attempt: acquire the sequence lock
// (odd = held), run every barrier in place. Only reachable on classic
// runtimes once the slow path's own retry budget is spent.
func (tx *HyTx) startFallback() {
	tx.waiter.Reset()
	for {
		s := tx.g.seq.Load()
		if s&1 == 0 && tx.g.seq.CompareAndSwap(s, s+1) {
			break
		}
		tx.waiter.Wait()
		tx.stats.SpinWaits++
	}
	tx.irrevocable = true
	tx.g.fallbacks.Add(1)
}

// Prepare acquires this shard's sequence lock with the read-set validated —
// phase one of the decomposed commit (core.TwoPhase). Read-only participants
// acquire nothing. The hardware paths keep their character here: a spurious
// failure can still kill the attempt at the commit point, the fast path
// adopts moved epochs by signature intersection (fast.go), and the
// instrumented paths validate-and-adopt like a NOrec writer — both bounded
// so cross-shard lock acquisition stays deadlock-free.
func (tx *HyTx) Prepare() {
	if tx.writes.Len() == 0 {
		return
	}
	if tx.path != pathSlow && tx.SpuriousPct > 0 && tx.rng.Float64()*100 < tx.SpuriousPct {
		tx.abortPath(core.ReasonSpurious)
	}
	if tx.path == pathFast {
		for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
			tx.fastAdoptLimit(hyTwoPhaseWaitBound)
		}
	} else {
		for !tx.g.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
			tx.stats.ClockAdopts++
			tx.snapshot = tx.validateLimit(hyTwoPhaseWaitBound)
		}
	}
	tx.locked = true
}

// Validate re-checks this participant under the cross-shard decision point.
// A writing participant holds its shard's lock since Prepare, so nothing can
// have moved; a read-only participant revalidates live: the fast path
// intersects its read signature against any epochs that moved, the
// instrumented paths run a bounded classical validation.
func (tx *HyTx) Validate() {
	if tx.locked {
		return
	}
	if tx.path == pathFast {
		tx.fastAdoptLimit(hyTwoPhaseWaitBound)
		return
	}
	tx.snapshot = tx.validateLimit(hyTwoPhaseWaitBound)
}

// Publish applies the write-set and releases the lock — phase two, reached
// only after every participating shard validated.
func (tx *HyTx) Publish() {
	if !tx.locked {
		tx.countCommit() // read-only participant
		tx.lastW = tx.snapshot
		tx.slot.Clear()
		return
	}
	tx.g.stampSig(tx.snapshot+2, tx.writes) // fast readers check this epoch
	if tx.fp != nil {
		tx.fp.CommitDelay() // stretch the publish window under the lock
	}
	tx.publish()
	tx.g.seq.Store(tx.snapshot + 2)
	tx.locked = false
	tx.countCommit()
	tx.lastW = tx.snapshot + 2
	tx.slot.Clear()
}
