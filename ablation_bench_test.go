package semstm

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - read-set de-duplication (Section 4.1 discusses why the paper appends
//     duplicates instead of scanning);
//   - S-TL2's phase-1 snapshot extension (Algorithm 7 lines 19-25);
//   - the contention-management backoff policy;
//   - hardware capacity in the hybrid HTM, where the semantic build's
//     smaller tracked sets translate into fewer fallbacks.
//
// Run with: go test -bench=Ablation -benchmem

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"semstm/internal/apps"
	"semstm/internal/harness"
	"semstm/internal/stamp"
	"semstm/stm"
)

// runAblation drives a workload builder over a pre-configured runtime.
func runAblation(b *testing.B, rt *stm.Runtime, w harness.Workload) {
	before := rt.Stats()
	var seed atomic.Int64
	b.SetParallelism(benchParallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			w.Op(rng)
		}
	})
	b.StopTimer()
	sn := rt.Stats().Sub(before)
	b.ReportMetric(sn.AbortRate(), "aborts%")
	if err := w.Check(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationReadDedup measures the duplicate-scan trade-off on the
// probe-heavy hashtable: deduplication shrinks validation work but pays a
// linear scan on every read.
func BenchmarkAblationReadDedup(b *testing.B) {
	for _, dedup := range []bool{false, true} {
		name := "append-duplicates"
		if dedup {
			name = "dedup-scan"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.New(stm.SNOrec)
			rt.SetReadDedup(dedup)
			rt.SetYieldEvery(4)
			runAblation(b, rt, apps.NewHashtable(rt, 2048))
		})
	}
}

// BenchmarkAblationPhase1Extension quantifies S-TL2's snapshot extension on
// the LRU cache — the workload whose S-TL2 results the paper explains by
// "the non-transformed reads ... make the first phase shorter".
func BenchmarkAblationPhase1Extension(b *testing.B) {
	for _, noExtend := range []bool{false, true} {
		name := "extension-on"
		if noExtend {
			name = "extension-off"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.New(stm.STL2)
			rt.SetNoExtend(noExtend)
			rt.SetYieldEvery(4)
			runAblation(b, rt, apps.NewLRUCache(rt, 64, 8))
		})
	}
}

// BenchmarkAblationBackoff compares contention-management policies on a
// deliberately hot bank (few accounts, many conflicts).
func BenchmarkAblationBackoff(b *testing.B) {
	policies := []struct {
		name string
		p    stm.BackoffPolicy
	}{
		{"exp", stm.BackoffExp},
		{"yield", stm.BackoffYield},
		{"none", stm.BackoffNone},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			rt := stm.New(stm.NOrec)
			rt.SetBackoff(pol.p)
			rt.SetYieldEvery(4)
			runAblation(b, rt, apps.NewBank(rt, 8, 1000))
		})
	}
}

// BenchmarkAblationHTMCapacity sweeps the simulated hardware capacity on the
// increment-heavy Kmeans kernel: the semantic build tracks one write-set
// entry per accumulator instead of a read+write pair, so it stays in
// hardware at capacities where the base build falls back.
func BenchmarkAblationHTMCapacity(b *testing.B) {
	for _, capacity := range []int{12, 24, 48} {
		for _, algo := range []stm.Algorithm{stm.HTM, stm.SHTM} {
			b.Run(algo.String()+"/cap="+itoa(capacity), func(b *testing.B) {
				rt := stm.New(algo)
				rt.ConfigureHTM(capacity, 4, 0)
				rt.SetYieldEvery(4)
				w := stamp.NewKmeans(rt, 16, 8)
				runAblation(b, rt, w)
				fallbacks, hwAborts := rt.HTMStats()
				if sn := rt.Stats(); sn.Commits > 0 {
					b.ReportMetric(100*float64(fallbacks)/float64(sn.Commits), "fallback%")
					b.ReportMetric(float64(hwAborts)/float64(sn.Commits), "hwAborts/tx")
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
