package semstm

// Repository-level benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation, mirroring the experiment registry used by
// cmd/semstm-bench. Throughput panels surface as ns/op (inverse throughput)
// with an aborts% metric; the Table 3 benchmark reports the per-transaction
// operation profile as custom metrics.
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=Fig1Hashtable -cpu 4

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"semstm/internal/apps"
	"semstm/internal/experiments"
	"semstm/internal/harness"
	"semstm/internal/stamp"
	"semstm/internal/txprogs"
	"semstm/internal/txvm"
	"semstm/stm"
)

// benchParallelism multiplies GOMAXPROCS to keep real transaction
// concurrency even on small machines.
const benchParallelism = 4

// benchAlgos drives one workload builder under the four Figure 1 algorithms.
func benchAlgos(b *testing.B, build harness.Builder) {
	for _, a := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2} {
		b.Run(a.String(), func(b *testing.B) {
			rt := stm.New(a)
			rt.SetYieldEvery(4)
			w := build(rt)
			before := rt.Stats()
			var seed atomic.Int64
			b.SetParallelism(benchParallelism)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					w.Op(rng)
				}
			})
			b.StopTimer()
			sn := rt.Stats().Sub(before)
			b.ReportMetric(sn.AbortRate(), "aborts%")
			if err := w.Check(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig1Hashtable regenerates Figure 1a/1b (hashtable throughput and
// aborts): 10 set/get operations per transaction on an open-addressing table.
func BenchmarkFig1Hashtable(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return apps.NewHashtable(rt, 2048)
	})
}

// BenchmarkFig1Bank regenerates Figure 1c/1d (bank transfers with overdraft
// checks).
func BenchmarkFig1Bank(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return apps.NewBank(rt, 1024, 1000)
	})
}

// BenchmarkFig1LRU regenerates Figure 1e/1f (LRU cache sets/lookups).
func BenchmarkFig1LRU(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return apps.NewLRUCache(rt, 64, 8)
	})
}

// BenchmarkFig1Kmeans regenerates Figure 1g/1h (centroid accumulation).
func BenchmarkFig1Kmeans(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return stamp.NewKmeans(rt, 16, 8)
	})
}

// BenchmarkFig1Vacation regenerates Figure 1i/1j (travel reservations).
func BenchmarkFig1Vacation(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return stamp.NewVacation(rt, 512)
	})
}

// BenchmarkFig1Labyrinth1 regenerates Figure 1k/1l (maze routing with the
// grid copy inside the transaction).
func BenchmarkFig1Labyrinth1(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return stamp.NewLabyrinth(rt, 16, 16, 2, false)
	})
}

// BenchmarkFig1Labyrinth2 regenerates Figure 1m/1n (the TRANSACT'14 variant
// with the grid copy outside the transaction).
func BenchmarkFig1Labyrinth2(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return stamp.NewLabyrinth(rt, 16, 16, 2, true)
	})
}

// BenchmarkFig1Yada regenerates Figure 1o/1p (mesh refinement).
func BenchmarkFig1Yada(b *testing.B) {
	benchAlgos(b, func(rt *stm.Runtime) harness.Workload {
		return stamp.NewYada(rt, 120, 40000)
	})
}

// benchGCC drives one compiled TxC entry point under the three Figure 2
// configurations.
func benchGCC(b *testing.B, src, entry string, args func(*rand.Rand) []int64, setup func(*txvm.VM) error) {
	for _, mode := range txprogs.Modes() {
		b.Run(mode.String(), func(b *testing.B) {
			vm, _, err := txprogs.Build(src, mode)
			if err != nil {
				b.Fatal(err)
			}
			vm.Runtime().SetYieldEvery(4)
			if setup != nil {
				if err := setup(vm); err != nil {
					b.Fatal(err)
				}
			}
			before := vm.Runtime().Stats()
			var seed atomic.Int64
			b.SetParallelism(benchParallelism)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := vm.NewThread(seed.Add(1))
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					var a []int64
					if args != nil {
						a = args(rng)
					}
					if _, err := th.Call(entry, a...); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			sn := vm.Runtime().Stats().Sub(before)
			b.ReportMetric(sn.AbortRate(), "aborts%")
		})
	}
}

// BenchmarkFig2Hashtable regenerates Figure 2a/2b (the compiled hashtable
// under plain GCC, Modified-GCC delegation, and S-NOrec).
func BenchmarkFig2Hashtable(b *testing.B) {
	benchGCC(b, txprogs.HashtableSrc, "txn10", nil, experiments.PrefillGCCHashtable)
}

// BenchmarkFig2Vacation regenerates Figure 2c/2d (the compiled reservation
// kernel).
func BenchmarkFig2Vacation(b *testing.B) {
	benchGCC(b, txprogs.VacationSrc, "client",
		func(rng *rand.Rand) []int64 { return []int64{rng.Int63n(100)} },
		func(vm *txvm.VM) error {
			for i := int64(0); i < 256; i++ {
				if err := vm.SetShared("numfree", i, 1_000_000); err != nil {
					return err
				}
				if err := vm.SetShared("price", i, 100+i); err != nil {
					return err
				}
			}
			return nil
		})
}

// BenchmarkTable3 regenerates Table 3: it runs every benchmark under the
// base and semantic builds and reports the per-committed-transaction
// operation profile as metrics (reads/tx, writes/tx, cmps/tx, incs/tx,
// promotes/tx).
func BenchmarkTable3(b *testing.B) {
	type wl struct {
		name  string
		build harness.Builder
	}
	workloads := []wl{
		{"Hashtable", func(rt *stm.Runtime) harness.Workload { return apps.NewHashtable(rt, 2048) }},
		{"Bank", func(rt *stm.Runtime) harness.Workload { return apps.NewBank(rt, 1024, 1000) }},
		{"LRU", func(rt *stm.Runtime) harness.Workload { return apps.NewLRUCache(rt, 64, 8) }},
		{"Vacation", func(rt *stm.Runtime) harness.Workload { return stamp.NewVacation(rt, 512) }},
		{"Kmeans", func(rt *stm.Runtime) harness.Workload { return stamp.NewKmeans(rt, 16, 8) }},
		{"Labyrinth", func(rt *stm.Runtime) harness.Workload { return stamp.NewLabyrinth(rt, 16, 16, 2, false) }},
		{"Yada", func(rt *stm.Runtime) harness.Workload { return stamp.NewYada(rt, 120, 60000) }},
		{"SSCA2", func(rt *stm.Runtime) harness.Workload { return stamp.NewSSCA2(rt, 512, 64) }},
		{"Genome", func(rt *stm.Runtime) harness.Workload { return stamp.NewGenome(rt, 6400, 800) }},
		{"Intruder", func(rt *stm.Runtime) harness.Workload { return stamp.NewIntruder(rt, 500) }},
	}
	for _, wl := range workloads {
		for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec} {
			build := "base"
			if algo.Semantic() {
				build = "semantic"
			}
			b.Run(wl.name+"/"+build, func(b *testing.B) {
				rt := stm.New(algo)
				w := wl.build(rt)
				before := rt.Stats()
				rng := rand.New(rand.NewSource(1))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.Op(rng)
				}
				b.StopTimer()
				sn := rt.Stats().Sub(before)
				if sn.Commits == 0 {
					return
				}
				c := float64(sn.Commits)
				b.ReportMetric(float64(sn.Reads)/c, "reads/tx")
				b.ReportMetric(float64(sn.Writes)/c, "writes/tx")
				b.ReportMetric(float64(sn.Compares)/c, "cmps/tx")
				b.ReportMetric(float64(sn.Incs)/c, "incs/tx")
				b.ReportMetric(float64(sn.Promotes)/c, "promotes/tx")
				if err := w.Check(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
