// Command tmc is the TxC transactional compiler driver: it compiles a TxC
// source file to the GIMPLE-like IR, applies the tm_mark instrumentation and
// (optionally) the semantic pattern detection and tm_optimize passes, dumps
// the IR, and can run a function against a chosen STM algorithm.
//
// Usage:
//
//	tmc -dump prog.txc                 # IR after plain tm_mark
//	tmc -dump -semantic prog.txc       # IR after pattern detection + DCE
//	tmc -run main -args 3,4 prog.txc   # compile and execute
//	tmc -example                       # dump the built-in counter example
//
// With -semantic, the pass statistics (S1R/S2R/SW conversions, removed
// reads) are reported, mirroring the paper's compiler-side measurements.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"semstm/internal/tmpass"
	"semstm/internal/txlang"
	"semstm/internal/txprogs"
	"semstm/internal/txvm"
	"semstm/stm"
)

func main() {
	var (
		dump     = flag.Bool("dump", false, "dump IR after the passes")
		semantic = flag.Bool("semantic", false, "enable cmp/inc pattern detection and tm_optimize")
		exprs    = flag.Bool("expr", false, "additionally detect sum-expression conditionals (_ITM_SE)")
		noMark   = flag.Bool("no-mark", false, "skip instrumentation entirely (front-end output)")
		runFn    = flag.String("run", "", "function to execute after compiling")
		argList  = flag.String("args", "", "comma-separated integer arguments for -run")
		algoName = flag.String("algo", "S-NOrec", "STM algorithm for -run: NOrec, S-NOrec, TL2, S-TL2, SGL")
		seed     = flag.Int64("seed", 1, "PRNG seed for the rand builtin")
		example  = flag.Bool("example", false, "use the built-in counter example instead of a file")
	)
	flag.Parse()

	var src string
	switch {
	case *example:
		src = txprogs.CounterSrc
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
	default:
		fatalf("expected exactly one source file (or -example); see -h")
	}

	prog, err := txlang.Compile(src)
	if err != nil {
		fatalf("%v", err)
	}
	if !*noMark {
		st, err := tmpass.Run(prog, tmpass.Options{
			DetectPatterns:    *semantic,
			Optimize:          *semantic,
			DetectExpressions: *exprs,
		})
		if err != nil {
			fatalf("%v", err)
		}
		if *semantic {
			fmt.Printf("passes: %d _ITM_S1R, %d _ITM_S2R, %d _ITM_SW, %d _ITM_SE; removed %d never-live TM reads (%d other)\n",
				st.S1R, st.S2R, st.SW, st.SE, st.RemovedReads, st.RemovedOther)
		}
	}

	if *dump {
		names := make([]string, 0, len(prog.Funcs))
		for name := range prog.Funcs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(prog.Funcs[name].Dump())
		}
	}

	if *runFn != "" {
		algo, err := parseAlgo(*algoName)
		if err != nil {
			fatalf("%v", err)
		}
		vm := txvm.New(prog, stm.New(algo))
		var args []int64
		if *argList != "" {
			for _, part := range strings.Split(*argList, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
				if err != nil {
					fatalf("bad argument %q", part)
				}
				args = append(args, v)
			}
		}
		ret, err := vm.NewThread(*seed).Call(*runFn, args...)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s(%s) = %d\n", *runFn, *argList, ret)
		sn := vm.Runtime().Stats()
		fmt.Printf("stats: %d commits, %d aborts, %d reads, %d writes, %d compares, %d incs, %d promotes\n",
			sn.Commits, sn.Aborts, sn.Reads, sn.Writes, sn.Compares, sn.Incs, sn.Promotes)
	}
}

func parseAlgo(name string) (stm.Algorithm, error) {
	for _, a := range stm.Algorithms() {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tmc: "+format+"\n", args...)
	os.Exit(1)
}
