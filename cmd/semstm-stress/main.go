// Command semstm-stress is a black-box correctness stresser: it hammers an
// STM algorithm with rounds of concurrent randomized transactions — reads,
// writes, all six semantic conditionals in both address–value and
// address–address form, and increments — records every committed
// transaction's observations, and verifies that a sequential order explains
// them (the executable form of the paper's Section 5 correctness argument).
//
// Usage:
//
//	semstm-stress                          # all algorithms, quick pass
//	semstm-stress -algo S-TL2 -rounds 2000 -txns 5 -vars 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"semstm/internal/core"
	"semstm/internal/opacity"
	"semstm/stm"
)

func main() {
	var (
		algoName = flag.String("algo", "all", "algorithm to stress, or \"all\"")
		rounds   = flag.Int("rounds", 500, "concurrent rounds per algorithm")
		txns     = flag.Int("txns", 4, "transactions per round")
		vars     = flag.Int("vars", 4, "shared registers")
		ops      = flag.Int("ops", 6, "operations per transaction")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "PRNG seed")
	)
	flag.Parse()

	var algos []stm.Algorithm
	if *algoName == "all" {
		algos = stm.Algorithms()
	} else {
		found := false
		for _, a := range stm.Algorithms() {
			if strings.EqualFold(a.String(), *algoName) {
				algos = []stm.Algorithm{a}
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "semstm-stress: unknown algorithm %q\n", *algoName)
			os.Exit(2)
		}
	}

	failed := false
	for _, a := range algos {
		start := time.Now()
		err := stress(a, *rounds, *txns, *vars, *ops, *seed)
		status := "OK"
		if err != nil {
			status = "FAIL: " + err.Error()
			failed = true
		}
		fmt.Printf("%-10s %5d rounds x %d txns  %8v  %s\n",
			a, *rounds, *txns, time.Since(start).Round(time.Millisecond), status)
	}
	if failed {
		os.Exit(1)
	}
}

// stress runs the round-structured workload and checks serializability.
func stress(algo stm.Algorithm, rounds, txPerRound, vars, opsPerTx int, seed int64) error {
	operators := []core.Op{core.OpEQ, core.OpNEQ, core.OpGT, core.OpGTE, core.OpLT, core.OpLTE}
	rt := stm.New(algo)
	rt.SetYieldEvery(2)
	regs := stm.NewVars(vars, 0)
	history := make([][]opacity.TxLog, 0, rounds)
	for r := 0; r < rounds; r++ {
		logs := make([]opacity.TxLog, txPerRound)
		var wg sync.WaitGroup
		for w := 0; w < txPerRound; w++ {
			wg.Add(1)
			go func(w int, s int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(s))
				type scripted struct {
					kind opacity.Kind
					v, b int
					op   core.Op
					arg  int64
				}
				script := make([]scripted, opsPerTx)
				for i := range script {
					script[i] = scripted{
						kind: opacity.Kind(rng.Intn(4)),
						v:    rng.Intn(vars),
						b:    rng.Intn(vars),
						op:   operators[rng.Intn(len(operators))],
						arg:  rng.Int63n(20) - 10,
					}
				}
				var rec opacity.Recorder
				rt.Atomically(func(tx *stm.Tx) {
					rec.Reset()
					for _, sc := range script {
						switch sc.kind {
						case opacity.KindRead:
							rec.Read(sc.v, tx.Read(regs[sc.v]))
						case opacity.KindWrite:
							tx.Write(regs[sc.v], sc.arg)
							rec.Write(sc.v, sc.arg)
						case opacity.KindInc:
							tx.Inc(regs[sc.v], sc.arg)
							rec.Inc(sc.v, sc.arg)
						case opacity.KindCmp:
							if sc.arg%2 == 0 {
								rec.Cmp(sc.v, sc.op, sc.arg, tx.Cmp(regs[sc.v], sc.op, sc.arg))
							} else {
								rec.CmpVars(sc.v, sc.op, sc.b, tx.CmpVars(regs[sc.v], sc.op, regs[sc.b]))
							}
						}
					}
				})
				logs[w] = rec.Log()
			}(w, seed+int64(r*txPerRound+w))
		}
		wg.Wait()
		history = append(history, logs)
	}
	return opacity.CheckRounds(make([]int64, vars), history)
}
