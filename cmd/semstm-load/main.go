// Command semstm-load drives a semstm store with simulated client
// connections and reports throughput and outcome tallies.
//
// Two modes:
//
//	semstm-load -addr 127.0.0.1:7070 -workload counter -conns 256
//	    wire mode: one real TCP connection per simulated client against a
//	    running semstm-serve.
//
//	semstm-load -workload mixed -conns 1024 -shards 8
//	    in-process mode (no -addr): spins up a Store in this process and
//	    submits directly — the shape the servegate measures, where batching
//	    wins by amortizing commit work rather than hiding network latency.
//	    In-process mode also reports the batcher's own counters (mean window
//	    size, merged-inc ratio, solo fallbacks).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"semstm/internal/server"
	"semstm/stm"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server wire address; \"\" runs an in-process store")
		workload = flag.String("workload", "counter", "mix: counter, readmostly, mixed")
		conns    = flag.Int("conns", 64, "simulated client connections")
		keys     = flag.Uint64("keys", 1<<20, "key-universe size")
		hot      = flag.Uint64("hot", 4096, "hot-set size (counter and mixed workloads)")
		duration = flag.Duration("duration", time.Second, "how long to drive load")
		seed     = flag.Uint64("seed", 1, "op-stream seed")

		// In-process mode only.
		algoName = flag.String("algo", "S-NOrec", "in-process engine family")
		shards   = flag.Int("shards", 8, "in-process runtime shard count")
		nobatch  = flag.Bool("nobatch", false, "in-process: disable the coalescing batcher")
		maxBatch = flag.Int("maxbatch", 64, "in-process: max requests per batch window")
		dir      = flag.String("dir", "", "in-process: WAL directory (\"\" = volatile)")
		fsyncPol = flag.String("fsync", "interval", "in-process durable fsync policy: always, interval, none")
	)
	flag.Parse()

	cfg := server.LoadConfig{
		Workload:    *workload,
		Connections: *conns,
		Keys:        *keys,
		HotKeys:     *hot,
		Duration:    *duration,
		Seed:        *seed,
	}

	var (
		res   server.LoadResult
		store *server.Store
		err   error
	)
	if *addr != "" {
		fmt.Printf("semstm-load: %s workload, %d conns against %s for %v\n", *workload, *conns, *addr, *duration)
		res, err = server.RunLoadTCP(*addr, cfg)
	} else {
		var algo stm.Algorithm
		found := false
		for _, a := range stm.Algorithms() {
			if strings.EqualFold(a.String(), *algoName) {
				algo, found = a, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "semstm-load: unknown algorithm %q\n", *algoName)
			os.Exit(2)
		}
		store, err = server.Open(server.Config{
			Algo: algo, Shards: *shards, Batching: !*nobatch, MaxBatch: *maxBatch,
			DurableDir: *dir, Fsync: *fsyncPol,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "semstm-load: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		fmt.Printf("semstm-load: %s workload, %d conns in-process (%s, shards=%d, batching=%v) for %v\n",
			*workload, *conns, algo, *shards, !*nobatch, *duration)
		res, err = server.RunLoad(store, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "semstm-load: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("requests     %12d  (%.0f req/s over %v)\n", res.Requests, res.RequestsPerSec, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("committed    %12d\n", res.Committed)
	fmt.Printf("guard-failed %12d\n", res.GuardFailed)
	fmt.Printf("aborted      %12d\n", res.Aborted)
	if store != nil {
		m := store.Metrics()
		fmt.Printf("batches      %12d  (mean window %.1f, %d requests batched)\n",
			m.Batches(), m.MeanBatch(), m.Batched())
		fmt.Printf("merged incs  %11.1f%%\n", 100*m.MergedIncRatio())
		fmt.Printf("solo falls   %12d\n", m.SoloFallbacks())
	}
}
