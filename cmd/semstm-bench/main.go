// Command semstm-bench regenerates the tables and figures of "Extending TM
// Primitives using Low Level Semantics" (SPAA 2016) on this machine.
//
// Usage:
//
//	semstm-bench -list
//	semstm-bench -exp fig1a [-threads 2,4,8] [-dur 500ms]
//	semstm-bench -exp all   [-ops 4000]
//	semstm-bench -json BENCH_PR3.json [-threads 1,2,4,8] [-dur 300ms]
//
// Each experiment prints the same series the corresponding paper panel
// plots: throughput or execution time plus abort rates per algorithm per
// thread count, or the Table 3 operation profile. With -json, the tool
// instead measures the committed perf baseline — {hashtable, bank} ×
// {NOrec, S-NOrec, TL2, S-TL2, RingSTM, S-RingSTM, Adaptive} × {1, 2, 4, 8}
// threads, best of -reps measurements per cell to filter host noise — and
// writes it as a machine-readable BENCH_*.json report (schema v5:
// throughput, abort rate, commit and abort counts, per-cell GOMAXPROCS, the
// commit-path counters, the typed abort-reason breakdown and irrevocable
// escalation count, the per-cell allocation metrics allocs_per_tx /
// bytes_per_tx / gc_pause_us from runtime.MemStats deltas, plus — on
// adaptive cells — the online engine-switch count and the engine the cell
// ended on) so perf and robustness PRs can diff against it. From schema v6
// the report also carries the sharded-runtime grid, from v7 the durable
// grid (bank over stm.OpenDurable, fsync policy × shard count, with the
// wal_appends / wal_fsyncs / wal_group_size accounting per cell), and from
// v8 the progressive-hybrid grid ({hashtable-rm, hashtable, bank} × {S-HTM,
// HyTM-mid, HyTM}, with the per-path commit split hw_fast_commits /
// hw_middle_commits, the hw_capacity_aborts bucket, and the engine-level
// hw_fallbacks / hw_aborts tallies per cell), and from v9 the
// snapshot-analytics grid (privatized vs instrumented scans per algorithm,
// with the snapshot_mode tag and the retired / reclaimed epoch-lifecycle
// counters) plus a reclaim-churn cell exercising the NewVar -> Retire
// recycling path, and from v10 the server grid (the networked store's
// counter-heavy load generator, batching on/off × connections × shards, with
// the batcher-shape counters batches / batch_mean / merged_inc_pct /
// solo_fallbacks on batching-on cells).
// bench-compare accepts reports of any schema (the allocation gate applies
// from v5 on).
//
// -cpuprofile and -memprofile write pprof profiles of whatever experiments
// or baselines the invocation runs (see scripts/profile.sh), so a perf
// investigation starts from a flame graph instead of guesses.
//
// Every cell runs under an explicit GOMAXPROCS (-gomaxprocs): by default the
// scheduler width follows each cell's thread count; a pinned width clamps
// larger thread counts with a warning instead of silently measuring
// oversubscription.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"semstm/internal/experiments"
	"semstm/stm"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list available experiments and exit")
		expID       = flag.String("exp", "", "experiment id to run, or \"all\"")
		threads     = flag.String("threads", "", "comma-separated thread counts (default per experiment)")
		dur         = flag.Duration("dur", 0, "per-cell duration for throughput experiments")
		ops         = flag.Int("ops", 0, "total operations for execution-time experiments")
		procs       = flag.Int("gomaxprocs", 0, "per-cell GOMAXPROCS: 0 matches each cell's thread count, > 0 pins a width (thread counts above it are clamped), < 0 keeps the process setting")
		reps        = flag.Int("reps", 0, "baseline reps per cell, best-of-N (0 takes the default of 3)")
		jsonPath    = flag.String("json", "", "write the micro-benchmark baseline as JSON to this path (BENCH_*.json)")
		shardGate   = flag.Bool("shardgate", false, "run the shard-scaling gate (sharded bank+hashtable, 1 vs -shardgate-shards shards) and exit non-zero below -shardgate-min")
		gateShards  = flag.Int("shardgate-shards", 32, "shard count of the wide cell in the -shardgate comparison")
		gateMin     = flag.Float64("shardgate-min", 8, "minimum throughput ratio (wide/1-shard) the -shardgate run must reach")
		durGate     = flag.Bool("durgate", false, "run the durability-overhead gate (durable vs volatile sharded bank) and exit non-zero below -durgate-min")
		durShards   = flag.Int("durgate-shards", 32, "shard count of the -durgate comparison")
		durPolicy   = flag.String("durgate-policy", "interval", "fsync policy of the durable cell in the -durgate comparison")
		durMin      = flag.Float64("durgate-min", 0.65, "minimum throughput ratio (durable/volatile) the -durgate run must reach")
		hybGate     = flag.Bool("hybridgate", false, "run the instrumentation-cost gate (capacity-edge hashtable scan, HyTM fast path vs classic fully instrumented HTM) and exit non-zero below -hybridgate-min")
		hybThreads  = flag.Int("hybridgate-threads", 1, "thread count of the -hybridgate comparison")
		hybMin      = flag.Float64("hybridgate-min", 1.5, "minimum throughput ratio (fast-path/instrumented) the -hybridgate run must reach")
		privGate    = flag.Bool("privgate", false, "run the privatization-payoff gate (snapshot scan, privatized vs instrumented) and exit non-zero below -privgate-min")
		privThreads = flag.Int("privgate-threads", 4, "writer thread count behind each scan loop of the -privgate comparison")
		privMin     = flag.Float64("privgate-min", 5, "minimum scan-rate ratio (privatized/instrumented) the -privgate run must reach")
		srvGate     = flag.Bool("servegate", false, "run the commit-coalescing gate (durable counter-heavy loadgen, batched vs per-request) and exit non-zero below -servegate-min")
		srvConns    = flag.Int("servegate-conns", 1024, "simulated connection count of the -servegate comparison")
		srvShards   = flag.Int("servegate-shards", 8, "shard count of the -servegate comparison")
		srvMin      = flag.Float64("servegate-min", 3, "minimum throughput ratio (batched/unbatched) the -servegate run must reach")
		recGate     = flag.Bool("reclaimgate", false, "run the bounded-heap reclamation gate (retire-heavy churn, 3 sampling windows) and exit non-zero above -reclaimgate-growth")
		recThreads  = flag.Int("reclaimgate-threads", 1, "churn thread count of the -reclaimgate run (1 keeps the measurement about the allocator: every descheduled pinned descriptor legitimately holds back reclamation, so wider churn on a narrow host measures scheduler quanta instead)")
		recGrowth   = flag.Float64("reclaimgate-growth", 10, "maximum heap growth in percent from the first to the last -reclaimgate window")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap (allocation) profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on the way out (fatalf paths excepted) after a forcing GC,
		// so the profile reflects live retention plus the cumulative
		// allocation sites of the run.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "semstm-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "semstm-bench: memprofile: %v\n", err)
			}
		}()
	}

	if *list || (*expID == "" && *jsonPath == "" && !*shardGate && !*durGate && !*hybGate && !*privGate && !*srvGate && !*recGate) {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %-14s %s\n", e.ID, e.Panels, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	cfg := experiments.Config{Duration: *dur, TotalOps: *ops, GOMAXPROCS: *procs, Reps: *reps}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fatalf("bad -threads value %q", part)
			}
			// Under a pinned scheduler width, more workers than Ps measures
			// oversubscription, not the requested concurrency: clamp loudly
			// rather than publish a mislabeled cell.
			if *procs > 0 && n > *procs {
				fmt.Fprintf(os.Stderr,
					"semstm-bench: warning: clamping -threads %d to -gomaxprocs %d\n", n, *procs)
				n = *procs
			}
			if len(cfg.Threads) > 0 && cfg.Threads[len(cfg.Threads)-1] == n {
				continue // clamping may produce adjacent duplicates
			}
			cfg.Threads = append(cfg.Threads, n)
		}
	}

	if *shardGate {
		// The shard-scaling gate (scripts/check.sh): the n-shard cell of each
		// workload, single-shard transactions only, must out-commit the 1-shard
		// cell by at least -shardgate-min. NOrec is the gate engine — one
		// global seqlock serializes its every commit against every reader, so
		// it shows the largest clock-sharing cost and the gate has no slack to
		// hide behind.
		failed := false
		for _, wl := range []string{"bank", "hashtable"} {
			start := time.Now()
			res, err := experiments.ShardScaling(cfg, wl, stm.NOrec, *gateShards)
			if err != nil {
				fatalf("shardgate: %v", err)
			}
			ok := res.Ratio >= *gateMin
			verdict := "ok"
			if !ok {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("shardgate %-9s %s: 1 shard %.1f ktx/s, %d shards %.1f ktx/s, ratio %.2fx (min %.1fx) %s [%v]\n",
				wl, res.Algorithm, res.BaseK, res.Shards, res.ShardedK, res.Ratio, *gateMin, verdict,
				time.Since(start).Round(time.Millisecond))
		}
		if failed {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" && !*durGate && !*hybGate && !*privGate && !*srvGate && !*recGate {
			return
		}
	}

	if *durGate {
		// The durability-overhead gate (scripts/check.sh): the durable sharded
		// bank under -durgate-policy must keep at least -durgate-min of the
		// volatile cell's throughput at the same shape — the PR7 acceptance
		// bar (interval fsync, 32 shards, within 35%).
		start := time.Now()
		res, err := experiments.DurableOverhead(cfg, *durShards, *durPolicy)
		if err != nil {
			fatalf("durgate: %v", err)
		}
		ok := res.Ratio >= *durMin
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("durgate %-9s %s: volatile %.1f ktx/s, durable(%s) %.1f ktx/s at %d shards, ratio %.2f (min %.2f) %s [appends %d, fsyncs %d, group %.1f] [%v]\n",
			res.Workload, res.Algorithm, res.VolatileK, res.Policy, res.DurableK, res.Shards,
			res.Ratio, *durMin, verdict, res.WALAppends, res.WALFsyncs, res.GroupSize,
			time.Since(start).Round(time.Millisecond))
		if !ok {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" && !*hybGate && !*privGate && !*srvGate && !*recGate {
			return
		}
	}

	if *hybGate {
		// The instrumentation-cost gate (scripts/check.sh): on the
		// capacity-edge hashtable scan, HyTM with its uninstrumented fast path
		// must out-commit classic fully instrumented HTM by at least
		// -hybridgate-min — the PR8 acceptance bar. The scan cell makes the
		// gap structural rather than a wall-clock delta: the tail of
		// value-pinning instrumentation's per-barrier footprint overflows
		// the simulated tracking budget, and overflowing transactions burn
		// the retry ladder, back off, and finish irrevocably, while the fast
		// path's first-touch footprint fits and commits in hardware. A run
		// where the fast path never committed proves nothing about
		// instrumentation cost, so it fails outright.
		start := time.Now()
		res, err := experiments.HybridGate(cfg, *hybThreads)
		if err != nil {
			fatalf("hybridgate: %v", err)
		}
		ok := res.Ratio >= *hybMin && res.FastCommits > 0
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("hybridgate %-12s x%d: instrumented %.1f ktx/s, fast-path %.1f ktx/s, ratio %.2fx (min %.1fx), fast commits %d %s [%v]\n",
			res.Workload, res.Threads, res.InstK, res.FastK, res.Ratio, *hybMin,
			res.FastCommits, verdict, time.Since(start).Round(time.Millisecond))
		if !ok {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" && !*privGate && !*srvGate && !*recGate {
			return
		}
	}

	if *privGate {
		// The privatization-payoff gate (scripts/check.sh): on the
		// snapshot-analytics double buffer, a privatized scan — one tiny flip
		// transaction plus uninstrumented loads — must complete full-buffer
		// sums at least -privgate-min times faster than an instrumented
		// read-only transaction over the same live writer load. This is the
		// PR9 acceptance bar: the epoch/barrier machinery exists to make
		// uninstrumented access safe, so it must be worth its price.
		start := time.Now()
		res, err := experiments.PrivatizationGate(cfg, *privThreads)
		if err != nil {
			fatalf("privgate: %v", err)
		}
		ok := res.Ratio >= *privMin
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("privgate snapshot %s x%d writers: instrumented %.1f scans/s, privatized %.1f scans/s, ratio %.2fx (min %.1fx) %s [%v]\n",
			res.Algorithm, res.Threads, res.InstScans, res.PrivScans, res.Ratio, *privMin,
			verdict, time.Since(start).Round(time.Millisecond))
		if !ok {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" && !*srvGate && !*recGate {
			return
		}
	}

	if *srvGate {
		// The commit-coalescing gate (scripts/check.sh): on a durable store
		// that fsyncs every acknowledged request (the serving configuration
		// batching exists for), the counter-heavy load generator through the
		// per-shard batcher must out-commit per-request execution by at least
		// -servegate-min. Volatile arms on a narrow host trade blocking
		// handoffs for sub-microsecond solo commits and prove nothing; the
		// fsync-per-request arm is where amortization is structural.
		start := time.Now()
		res, err := experiments.ServeGate(cfg, *srvConns, *srvShards)
		if err != nil {
			fatalf("servegate: %v", err)
		}
		ok := res.Ratio >= *srvMin
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("servegate counter %s x%d conns, %d shards, fsync=%s: unbatched %.1f kreq/s, batched %.1f kreq/s, ratio %.2fx (min %.1fx) [window %.1f, merged %.1f%%, solo %d] %s [%v]\n",
			res.Algorithm, res.Connections, res.Shards, res.Fsync,
			res.UnbatchedK, res.BatchedK, res.Ratio, *srvMin,
			res.BatchMean, res.MergedIncPct, res.SoloFallbacks,
			verdict, time.Since(start).Round(time.Millisecond))
		if !ok {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" && !*recGate {
			return
		}
	}

	if *recGate {
		// The bounded-heap reclamation gate (scripts/check.sh): three
		// identical windows of retire-heavy churn (NewVar -> transaction ->
		// Retire), each followed by an epoch pump and a forced GC. The last
		// window's live heap must stay within -reclaimgate-growth percent of
		// the first (plus a fixed allocator-noise slack), and the reclaimer
		// must actually have recycled cells — a leaked limbo list fails on
		// growth, a disconnected reclaimer fails on the counter.
		start := time.Now()
		res, err := experiments.ReclaimGate(cfg, *recThreads)
		if err != nil {
			fatalf("reclaimgate: %v", err)
		}
		const slack = 8 << 20
		ok := res.Bounded(*recGrowth, slack)
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("reclaimgate churn x%d: heap %.2f -> %.2f -> %.2f MB (growth %.1f%%, max %.0f%% + %dMB slack), retired %d, reclaimed %d %s [%v]\n",
			*recThreads,
			float64(res.Windows[0])/(1<<20), float64(res.Windows[1])/(1<<20), float64(res.Windows[2])/(1<<20),
			res.GrowthPct(), *recGrowth, slack>>20, res.Retired, res.Reclaimed,
			verdict, time.Since(start).Round(time.Millisecond))
		if !ok {
			os.Exit(1)
		}
		if *expID == "" && *jsonPath == "" {
			return
		}
	}

	if *jsonPath != "" {
		fmt.Printf("=== baseline -> %s ===\n", *jsonPath)
		start := time.Now()
		rep, err := experiments.Baseline(cfg)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		out, err := rep.MarshalIndent()
		if err != nil {
			fatalf("baseline: %v", err)
		}
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fatalf("baseline: %v", err)
		}
		fmt.Printf("[%d cells at %d ms each written in %v]\n",
			len(rep.Cells), rep.DurationMS, time.Since(start).Round(time.Millisecond))
		if *expID == "" {
			return
		}
	}

	var targets []experiments.Experiment
	if *expID == "all" {
		targets = experiments.All()
	} else {
		e, err := experiments.Find(*expID)
		if err != nil {
			fatalf("%v (use -list)", err)
		}
		targets = []experiments.Experiment{e}
	}

	for _, e := range targets {
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Panels, e.Title)
		start := time.Now()
		out, err := e.Run(cfg)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		fmt.Print(out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "semstm-bench: "+format+"\n", args...)
	os.Exit(1)
}
