// Command semstm-serve runs the networked semantic store: named keyspaces
// over a sharded (optionally durable) runtime, with per-shard commit
// coalescing and a Prometheus-style /metrics endpoint.
//
//	semstm-serve                                   # volatile, 8 shards, batching on
//	semstm-serve -addr :7070 -metrics :7071
//	semstm-serve -algo S-TL2 -shards 16 -nobatch
//	semstm-serve -dir /var/lib/semstm -fsync interval
//
// The wire protocol is newline-delimited JSON, one transaction per line:
//
//	{"id":1,"ops":[{"op":"inc","ks":"acct","key":5,"val":2}]}
//
// Drive it with cmd/semstm-load.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"semstm/internal/server"
	"semstm/stm"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "wire-protocol listen address")
		metrics  = flag.String("metrics", "127.0.0.1:7071", "metrics listen address (\"\" disables)")
		algoName = flag.String("algo", "S-NOrec", "engine family: NOrec, S-NOrec, TL2, S-TL2, SGL, Adaptive")
		shards   = flag.Int("shards", 8, "runtime shard count")
		nobatch  = flag.Bool("nobatch", false, "disable the per-shard coalescing batcher")
		maxBatch = flag.Int("maxbatch", 64, "max requests per batch window")
		dir      = flag.String("dir", "", "write-ahead log directory (\"\" = volatile)")
		fsync    = flag.String("fsync", "interval", "durable fsync policy: always, interval, none")
	)
	flag.Parse()

	var algo stm.Algorithm
	found := false
	for _, a := range stm.Algorithms() {
		if strings.EqualFold(a.String(), *algoName) {
			algo, found = a, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "semstm-serve: unknown algorithm %q\n", *algoName)
		os.Exit(2)
	}

	store, err := server.Open(server.Config{
		Algo:       algo,
		Shards:     *shards,
		DurableDir: *dir,
		Fsync:      *fsync,
		Batching:   !*nobatch,
		MaxBatch:   *maxBatch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "semstm-serve: %v\n", err)
		os.Exit(1)
	}
	srv, err := server.Serve(store, *addr, *metrics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semstm-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("semstm-serve: %s on %s (shards=%d batching=%v", algo, srv.Addr(), *shards, !*nobatch)
	if *dir != "" {
		fmt.Printf(" durable=%s fsync=%s", *dir, *fsync)
	}
	fmt.Println(")")
	if m := srv.MetricsAddr(); m != "" {
		fmt.Printf("semstm-serve: metrics on http://%s/metrics\n", m)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("semstm-serve: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "semstm-serve: close: %v\n", err)
	}
	if err := store.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "semstm-serve: store close: %v\n", err)
		os.Exit(1)
	}
}
