// Command bench-compare diffs two BENCH_*.json baseline reports cell by cell
// and fails when throughput regressed beyond a tolerance, so a perf PR's
// claims are checked mechanically instead of by eyeballing two JSON files.
//
// Usage:
//
//	bench-compare [-max-regress 10] OLD.json NEW.json
//
// Cells are matched by (workload, algorithm, threads). Cells present in only
// one report — older schemas sweep fewer thread counts and algorithms — are
// listed but not compared. The exit status is 1 when any matched cell's
// throughput dropped more than -max-regress percent, 0 otherwise.
//
// Comparability guard: cells that match but ran under different GOMAXPROCS
// are annotated, since a throughput delta between different scheduler widths
// measures the width, not the code. They still count toward the regression
// gate — a committed baseline refresh is expected to keep widths stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"semstm/internal/experiments"
)

func main() {
	maxRegress := flag.Float64("max-regress", 10,
		"maximum tolerated throughput drop per cell, in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-max-regress PCT] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}

	type key struct {
		workload, algo string
		threads        int
	}
	index := func(r experiments.BaselineReport) map[key]experiments.BaselineCell {
		m := make(map[key]experiments.BaselineCell, len(r.Cells))
		for _, c := range r.Cells {
			m[key{c.Workload, c.Algorithm, c.Threads}] = c
		}
		return m
	}
	oldCells, newCells := index(oldRep), index(newRep)

	var keys []key
	for k := range oldCells {
		if _, ok := newCells[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.algo != b.algo {
			return a.algo < b.algo
		}
		return a.threads < b.threads
	})

	fmt.Printf("comparing %s (%s) -> %s (%s), tolerance %.1f%%\n",
		flag.Arg(0), oldRep.Schema, flag.Arg(1), newRep.Schema, *maxRegress)
	fmt.Printf("%-11s %-10s %3s  %12s %12s %9s\n",
		"workload", "algorithm", "thr", "old ktx/s", "new ktx/s", "delta")
	regressions := 0
	for _, k := range keys {
		o, n := oldCells[k], newCells[k]
		delta := 0.0
		if o.ThroughputK > 0 {
			delta = 100 * (n.ThroughputK - o.ThroughputK) / o.ThroughputK
		}
		mark := ""
		if o.ThroughputK > 0 && delta < -*maxRegress {
			mark = "  REGRESSION"
			regressions++
		}
		if o.GOMAXPROCS != 0 && n.GOMAXPROCS != 0 && o.GOMAXPROCS != n.GOMAXPROCS {
			mark += fmt.Sprintf("  [gomaxprocs %d -> %d]", o.GOMAXPROCS, n.GOMAXPROCS)
		}
		fmt.Printf("%-11s %-10s %3d  %12.2f %12.2f %+8.1f%%%s\n",
			k.workload, k.algo, k.threads, o.ThroughputK, n.ThroughputK, delta, mark)
	}
	unmatched := (len(oldCells) - len(keys)) + (len(newCells) - len(keys))
	if unmatched > 0 {
		fmt.Printf("%d cell(s) present in only one report (grid changed); not compared\n", unmatched)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d cell(s) regressed more than %.1f%%\n",
			regressions, *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("ok: no cell regressed more than %.1f%% (%d compared)\n", *maxRegress, len(keys))
}

func load(path string) (experiments.BaselineReport, error) {
	var rep experiments.BaselineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Cells) == 0 {
		return rep, fmt.Errorf("%s: no cells (not a BENCH_*.json baseline?)", path)
	}
	return rep, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-compare: "+format+"\n", args...)
	os.Exit(1)
}
