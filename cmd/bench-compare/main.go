// Command bench-compare diffs two BENCH_*.json baseline reports cell by cell
// and fails when throughput regressed beyond a tolerance, so a perf PR's
// claims are checked mechanically instead of by eyeballing two JSON files.
//
// Usage:
//
//	bench-compare [-max-regress 10] [-max-alloc-increase 0.25] OLD.json NEW.json
//
// Cells are matched by (workload, algorithm, threads, shards, cross_pct,
// fsync_policy, snapshot_mode, batching) — the trailing fields are zero/empty on every pre-v6 cell, so
// older reports and the classic grid of newer ones line up key for key: a
// v5↔v6 comparison gates the classic grid, a v6↔v7 comparison additionally
// gates the sharded grid while the durable cells (fsync_policy set, v7 on)
// and the snapshot-analytics cells (snapshot_mode set, v9 on) join the diff
// once both sides have them. Cells present in only one report
// — older schemas sweep fewer thread counts and algorithms, pre-v6 reports
// have no sharded grid, pre-v7 no durable grid — are listed explicitly as
// added (NEW only) or removed (OLD only) rather than silently skipped, so a
// shrunken grid is visible in the output. The exit status is 1 when any
// matched cell's throughput dropped more than -max-regress percent, 0
// otherwise.
//
// When both reports carry the schema-v5 allocation metrics, the diff also
// gates allocs/tx: a cell whose allocs_per_tx grew by more than
// -max-alloc-increase (an absolute allocations-per-transaction budget, not a
// percentage — the steady-state target is zero, where relative deltas are
// meaningless) is a regression too. Older reports have no allocation data,
// so v4-vs-v5 comparisons gate throughput only.
//
// Comparability guard: cells that match but ran under different GOMAXPROCS
// are annotated, since a throughput delta between different scheduler widths
// measures the width, not the code. They still count toward the regression
// gate — a committed baseline refresh is expected to keep widths stable.
//
// -known-drift FILE loads a JSON array of cell keys with notes — cells whose
// throughput on this host is known to drift for reasons outside the code
// (frequency scaling, a noisy CI neighbor). The flag composes: repeat it
// and/or pass a comma-separated list, and every named file contributes its
// entries — per-PR drift files stack instead of each PR overwriting the
// marker set. A throughput regression in a listed cell is still measured and
// printed, annotated with the note, but does not fail the exit status: the
// list marks drift, it never hides it. An entry marks the whole cell, so the
// allocation gate is covered too: per-attempt allocs are deterministic, but
// on durable cells allocs/tx folds in the background flusher's fixed
// allocations amortized over however many transactions the capture managed,
// so a slow capture inflates allocs/tx exactly where it deflates throughput.
// Entries that match no compared cell, or whose cell
// no longer regresses, are called out as stale — per file, so each PR's list
// shrinks instead of accreting; a key listed by more than one file is warned
// about too. Entry fields mirror the cell key: {"workload", "algorithm",
// "threads", "shards", "cross_pct", "fsync_policy", "snapshot_mode",
// "batching", "note"}; unset fields default to the classic-grid zero values,
// keeping entries as terse as the cells they mark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"semstm/internal/experiments"
)

func main() {
	maxRegress := flag.Float64("max-regress", 10,
		"maximum tolerated throughput drop per cell, in percent")
	maxAllocIncrease := flag.Float64("max-alloc-increase", 0.25,
		"maximum tolerated allocs/tx increase per cell (absolute; v5 reports only)")
	var driftFiles []string
	flag.Func("known-drift",
		"JSON file of cell keys whose throughput regressions are known host drift: marked in the output, excluded from the exit status (repeatable; comma-separated lists compose)",
		func(v string) error {
			for _, p := range strings.Split(v, ",") {
				if p = strings.TrimSpace(p); p != "" {
					driftFiles = append(driftFiles, p)
				}
			}
			return nil
		})
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-max-regress PCT] [-max-alloc-increase N] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}
	// The allocation gate needs both sides to actually carry the metrics:
	// a pre-v5 OLD decodes allocs_per_tx as zero, which would flag every
	// honest NEW cell as a regression.
	allocGate := schemaVersion(oldRep.Schema) >= 5 && schemaVersion(newRep.Schema) >= 5

	type key struct {
		workload, algo string
		threads        int
		// shards and crossPct separate the sharded-grid cells of a v6 report:
		// they all run at one thread count, so without them the index would
		// silently collapse the whole sharded grid into one cell. Both are zero
		// on pre-v6 cells and on the unsharded grid, keeping v5↔v6 keys aligned.
		shards   int
		crossPct float64
		// fsyncPolicy separates the durable-grid cells of a v7 report from
		// their volatile twins, which share every other coordinate by design.
		fsyncPolicy string
		// snapshotMode separates the v9 snapshot-analytics twins — the
		// privatized and instrumented scan cells share every other coordinate.
		snapshotMode string
		// batching separates the v10 server-grid twins — the batched and
		// per-request cells share every other coordinate by design.
		batching string
	}
	index := func(r experiments.BaselineReport) map[key]experiments.BaselineCell {
		m := make(map[key]experiments.BaselineCell, len(r.Cells))
		for _, c := range r.Cells {
			m[key{c.Workload, c.Algorithm, c.Threads, c.Shards, c.CrossPct, c.FsyncPolicy, c.SnapshotMode, c.Batching}] = c
		}
		return m
	}
	oldCells, newCells := index(oldRep), index(newRep)

	// The known-drift list marks cells, it never hides them: a listed cell's
	// regression is still measured and printed, it just doesn't fail the run.
	// driftSeen/driftRegressed track which entries earned their keep so stale
	// ones are called out below, per contributing file; driftFile remembers
	// which file each key came from so the warnings name it.
	drift := map[key]string{}
	driftFile := map[key]string{}
	driftSeen := map[key]bool{}
	driftRegressed := map[key]bool{}
	for _, path := range driftFiles {
		entries, err := loadDrift(path)
		if err != nil {
			fatalf("%v", err)
		}
		for _, e := range entries {
			k := key{e.Workload, e.Algorithm, e.Threads, e.Shards, e.CrossPct, e.FsyncPolicy, e.SnapshotMode, e.Batching}
			if prev, ok := driftFile[k]; ok && prev != path {
				fmt.Fprintf(os.Stderr, "bench-compare: warning: %s: drift entry %s %s x%d already listed by %s\n",
					path, e.Workload, e.Algorithm, e.Threads, prev)
			}
			drift[k] = e.Note
			driftFile[k] = path
		}
	}

	var keys []key
	for k := range oldCells {
		if _, ok := newCells[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		if a.algo != b.algo {
			return a.algo < b.algo
		}
		if a.threads != b.threads {
			return a.threads < b.threads
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.crossPct != b.crossPct {
			return a.crossPct < b.crossPct
		}
		if a.fsyncPolicy != b.fsyncPolicy {
			return a.fsyncPolicy < b.fsyncPolicy
		}
		if a.snapshotMode != b.snapshotMode {
			return a.snapshotMode < b.snapshotMode
		}
		return a.batching < b.batching
	})

	fmt.Printf("comparing %s (%s) -> %s (%s), tolerance %.1f%%\n",
		flag.Arg(0), oldRep.Schema, flag.Arg(1), newRep.Schema, *maxRegress)
	if allocGate {
		fmt.Printf("allocation gate on: allocs/tx may grow at most %.2f per cell\n", *maxAllocIncrease)
		fmt.Printf("%-22s %-10s %3s  %12s %12s %9s  %9s %9s\n",
			"workload", "algorithm", "thr", "old ktx/s", "new ktx/s", "delta", "old al/tx", "new al/tx")
	} else {
		fmt.Printf("%-22s %-10s %3s  %12s %12s %9s\n",
			"workload", "algorithm", "thr", "old ktx/s", "new ktx/s", "delta")
	}
	label := func(k key) string {
		wl := k.workload
		if k.shards > 0 {
			wl = fmt.Sprintf("%s/s%d", k.workload, k.shards)
			if k.crossPct > 0 {
				wl += fmt.Sprintf("x%g%%", 100*k.crossPct)
			}
		}
		if k.fsyncPolicy != "" {
			wl += "/" + k.fsyncPolicy
		}
		if k.snapshotMode != "" {
			wl += "/" + k.snapshotMode
		}
		if k.batching != "" {
			wl += "/batch-" + k.batching
		}
		return wl
	}
	regressions, drifted := 0, 0
	for _, k := range keys {
		o, n := oldCells[k], newCells[k]
		wl := label(k)
		if _, ok := drift[k]; ok {
			driftSeen[k] = true
		}
		delta := 0.0
		if o.ThroughputK > 0 {
			delta = 100 * (n.ThroughputK - o.ThroughputK) / o.ThroughputK
		}
		mark := ""
		if o.ThroughputK > 0 && delta < -*maxRegress {
			if note, ok := drift[k]; ok {
				mark = fmt.Sprintf("  regression (known drift: %s)", note)
				driftRegressed[k] = true
				drifted++
			} else {
				mark = "  REGRESSION"
				regressions++
			}
		}
		if allocGate && n.AllocsPerTx-o.AllocsPerTx > *maxAllocIncrease {
			// A drift entry marks the cell, not just its throughput: on
			// durable cells allocs/tx is throughput-coupled (fixed
			// per-window flusher allocations amortized over fewer
			// transactions on a slow capture), so a host-drift note covers
			// the alloc delta too.
			if note, ok := drift[k]; ok {
				mark += fmt.Sprintf("  alloc regression (known drift: %s)", note)
				driftRegressed[k] = true
				drifted++
			} else {
				mark += "  ALLOC-REGRESSION"
				regressions++
			}
		}
		if o.GOMAXPROCS != 0 && n.GOMAXPROCS != 0 && o.GOMAXPROCS != n.GOMAXPROCS {
			mark += fmt.Sprintf("  [gomaxprocs %d -> %d]", o.GOMAXPROCS, n.GOMAXPROCS)
		}
		if allocGate {
			fmt.Printf("%-22s %-10s %3d  %12.2f %12.2f %+8.1f%%  %9.3f %9.3f%s\n",
				wl, k.algo, k.threads, o.ThroughputK, n.ThroughputK, delta,
				o.AllocsPerTx, n.AllocsPerTx, mark)
		} else {
			fmt.Printf("%-22s %-10s %3d  %12.2f %12.2f %+8.1f%%%s\n",
				wl, k.algo, k.threads, o.ThroughputK, n.ThroughputK, delta, mark)
		}
	}
	// Unmatched cells are listed explicitly, not silently skipped: a grid
	// that shrank (a removed cell) is as much a finding as a regressed one,
	// and an added cell documents what the new schema started measuring.
	listOnly := func(in, other map[key]experiments.BaselineCell, heading, report string) {
		var only []key
		for k := range in {
			if _, ok := other[k]; !ok {
				only = append(only, k)
			}
		}
		if len(only) == 0 {
			return
		}
		sort.Slice(only, func(i, j int) bool { return label(only[i])+only[i].algo < label(only[j])+only[j].algo })
		fmt.Printf("%d cell(s) %s (present only in %s); not compared:\n", len(only), heading, report)
		for _, k := range only {
			fmt.Printf("  %s %-22s %-10s %3d thr  %.2f ktx/s\n",
				heading, label(k), k.algo, k.threads, in[k].ThroughputK)
		}
	}
	listOnly(newCells, oldCells, "added", "NEW")
	listOnly(oldCells, newCells, "removed", "OLD")
	// Stale drift entries are warnings, not errors: they mean the list has
	// outlived the drift it documented and should shrink.
	var driftKeys []key
	for k := range drift {
		driftKeys = append(driftKeys, k)
	}
	sort.Slice(driftKeys, func(i, j int) bool {
		return label(driftKeys[i])+driftKeys[i].algo < label(driftKeys[j])+driftKeys[j].algo
	})
	for _, k := range driftKeys {
		switch {
		case !driftSeen[k]:
			fmt.Fprintf(os.Stderr, "bench-compare: warning: %s: known-drift entry %s %s x%d matches no compared cell (stale?)\n",
				driftFile[k], label(k), k.algo, k.threads)
		case !driftRegressed[k]:
			fmt.Fprintf(os.Stderr, "bench-compare: warning: %s: known-drift entry %s %s x%d no longer regresses; consider removing it\n",
				driftFile[k], label(k), k.algo, k.threads)
		}
	}
	if drifted > 0 {
		fmt.Printf("%d cell(s) regressed within known drift (marked above, not failing)\n", drifted)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d cell(s) regressed beyond tolerance\n", regressions)
		os.Exit(1)
	}
	fmt.Printf("ok: no cell regressed beyond tolerance (%d compared)\n", len(keys))
}

// driftEntry is one -known-drift record; its fields mirror the cell-matching
// key, with unset fields defaulting to the classic-grid zero values.
type driftEntry struct {
	Workload     string  `json:"workload"`
	Algorithm    string  `json:"algorithm"`
	Threads      int     `json:"threads"`
	Shards       int     `json:"shards"`
	CrossPct     float64 `json:"cross_pct"`
	FsyncPolicy  string  `json:"fsync_policy"`
	SnapshotMode string  `json:"snapshot_mode"`
	Batching     string  `json:"batching"`
	Note         string  `json:"note"`
}

// loadDrift reads a -known-drift file: a JSON array of driftEntry records,
// each of which must say what it marks and why.
func loadDrift(path string) ([]driftEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []driftEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, e := range entries {
		if e.Workload == "" || e.Algorithm == "" || e.Threads == 0 {
			return nil, fmt.Errorf("%s: entry %d needs workload, algorithm and threads", path, i)
		}
		if e.Note == "" {
			return nil, fmt.Errorf("%s: entry %d (%s %s x%d) has no note — a drift mark must say why",
				path, i, e.Workload, e.Algorithm, e.Threads)
		}
	}
	return entries, nil
}

// schemaVersion extracts the numeric suffix of a schema string like
// "semstm-bench-baseline/v4"; unknown layouts report 0.
func schemaVersion(s string) int {
	i := strings.LastIndex(s, "/v")
	if i < 0 {
		return 0
	}
	v, err := strconv.Atoi(s[i+2:])
	if err != nil {
		return 0
	}
	return v
}

func load(path string) (experiments.BaselineReport, error) {
	var rep experiments.BaselineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Cells) == 0 {
		return rep, fmt.Errorf("%s: no cells (not a BENCH_*.json baseline?)", path)
	}
	return rep, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-compare: "+format+"\n", args...)
	os.Exit(1)
}
