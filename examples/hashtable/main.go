// Hashtable: the open-addressing hash table of Algorithm 2 in action.
//
// The probe loop expresses every cell inspection as a semantic conditional
// (TM_NEQ/TM_EQ), so a prober records facts like "this cell is not my key"
// instead of pinning cell contents. Concurrent inserts that land on probed-
// over cells therefore stop aborting lookups — the effect behind the paper's
// headline 4x speedup. The program contrasts NOrec with S-NOrec on the same
// workload.
//
// Run with: go run ./examples/hashtable [-threads 8] [-ops 2000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"semstm/internal/txds"
	"semstm/stm"
)

func main() {
	threads := flag.Int("threads", 8, "worker goroutines")
	ops := flag.Int("ops", 2000, "transactions per worker (10 table ops each)")
	flag.Parse()

	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2} {
		run(algo, *threads, *ops)
	}
}

func run(algo stm.Algorithm, threads, ops int) {
	rt := stm.New(algo)
	table := txds.NewOpenTable(4096)
	const keySpace = 1024

	// Prefill to a moderate load factor.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1024; i++ {
		k := 1 + rng.Int63n(keySpace)
		rt.Atomically(func(tx *stm.Tx) { table.Insert(tx, k) })
	}

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				// One transaction = 10 set/get operations, as in the
				// paper's workload.
				keys := make([]int64, 10)
				inserts := make([]bool, 10)
				for j := range keys {
					keys[j] = 1 + r.Int63n(keySpace)
					inserts[j] = r.Intn(2) == 0
				}
				rt.Atomically(func(tx *stm.Tx) {
					for j, k := range keys {
						if inserts[j] {
							if !table.Insert(tx, k) {
								table.Remove(tx, k)
							}
						} else {
							table.Contains(tx, k)
						}
					}
				})
			}
		}(int64(t) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sn := rt.Stats()
	fmt.Printf("%-8s %8.0f tx/s  aborts %5.1f%%  size=%d  (%d cmps, %d reads)\n",
		algo, float64(sn.Commits)/elapsed.Seconds(), sn.AbortRate(),
		table.SizeNT(), sn.Compares, sn.Reads)
}
