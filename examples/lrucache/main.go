// LRU cache: the paper's software-cache micro-benchmark as a demo.
//
// The cache is a grid of lines x buckets; each bucket stores a key and a hit
// counter. Lookups probe with semantic NEQ conditionals and bump hit
// counters with deferred increments, so two transactions hitting the same
// line — even the same bucket's counter — no longer conflict. The demo runs
// a read-mostly workload and prints hit rates and abort rates per algorithm.
//
// Run with: go run ./examples/lrucache [-threads 8] [-ops 5000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"semstm/stm"
)

const (
	lines = 64
	assoc = 8
)

type cache struct {
	rt    *stm.Runtime
	keys  []*stm.Var
	freqs []*stm.Var
}

func (c *cache) line(key int64) int {
	return int(uint64(key)*0x9E3779B97F4A7C15>>40) % lines
}

// lookup returns true on a hit, bumping the bucket's frequency.
func (c *cache) lookup(tx *stm.Tx, key int64) bool {
	base := c.line(key) * assoc
	for j := 0; j < assoc; j++ {
		if !tx.NEQ(c.keys[base+j], key) {
			tx.Inc(c.freqs[base+j], 1)
			return true
		}
	}
	return false
}

// install places key in its line, evicting the least-frequently-used bucket.
func (c *cache) install(tx *stm.Tx, key int64) {
	base := c.line(key) * assoc
	victim, best := base, int64(1)<<62
	for j := 0; j < assoc; j++ {
		if f := tx.Read(c.freqs[base+j]); f < best {
			best, victim = f, base+j
		}
	}
	tx.Write(c.keys[victim], key)
	tx.Write(c.freqs[victim], 1)
}

func main() {
	threads := flag.Int("threads", 8, "worker goroutines")
	ops := flag.Int("ops", 5000, "cache operations per worker")
	flag.Parse()

	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2} {
		run(algo, *threads, *ops)
	}
}

func run(algo stm.Algorithm, threads, ops int) {
	rt := stm.New(algo)
	c := &cache{
		rt:    rt,
		keys:  stm.NewVars(lines*assoc, 0),
		freqs: stm.NewVars(lines*assoc, 0),
	}

	start := time.Now()
	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Zipf-ish skew: small keys are hot.
			zipf := rand.NewZipf(rng, 1.2, 8, lines*assoc*2)
			for i := 0; i < ops; i++ {
				key := int64(zipf.Uint64()) + 1
				hit := stm.Run(rt, func(tx *stm.Tx) bool {
					if c.lookup(tx, key) {
						return true
					}
					c.install(tx, key)
					return false
				})
				if hit {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(int64(t) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sn := rt.Stats()
	total := hits.Load() + misses.Load()
	fmt.Printf("%-8s %8.0f tx/s  hit rate %5.1f%%  aborts %5.1f%%\n",
		algo, float64(sn.Commits)/elapsed.Seconds(),
		100*float64(hits.Load())/float64(total), sn.AbortRate())
}
