// Quickstart: the semantic STM API in one file.
//
// It creates a handful of transactional variables, runs concurrent
// transactions that use the paper's semantic primitives — conditional
// operators (GT/EQ/...) and deferred increments — and prints the runtime
// statistics that show why semantics matter: the semantic run commits the
// same work with far fewer aborts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"semstm/stm"
)

func main() {
	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec} {
		demo(algo)
	}
}

func demo(algo stm.Algorithm) {
	rt := stm.New(algo)

	// A shared inventory: stock level and a sold counter.
	stock := stm.NewVar(10_000)
	sold := stm.NewVar(0)

	// Many buyers: each checks availability (a semantic conditional — the
	// transaction only records the fact "stock > 0", not its exact value)
	// and then buys one unit (two deferred increments).
	const buyers, purchases = 8, 2_000
	var wg sync.WaitGroup
	for b := 0; b < buyers; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < purchases; i++ {
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GT(stock, 0) { // TM_GT: semantic availability check
						tx.Dec(stock, 1) // TM_DEC: deferred decrement
						tx.Inc(sold, 1)  // TM_INC: deferred increment
					}
				})
			}
		}()
	}
	wg.Wait()

	// Read the results transactionally.
	total := stm.Run(rt, func(tx *stm.Tx) int64 {
		return tx.Read(stock) + tx.Read(sold)
	})

	sn := rt.Stats()
	fmt.Printf("%-8s stock=%5d sold=%5d (conserved: %v)  commits=%d aborts=%d (%.1f%%)\n",
		algo, stock.Load(), sold.Load(), total == 10_000,
		sn.Commits, sn.Aborts, sn.AbortRate())
}
