// gccmode: the compiler path end-to-end.
//
// The same TxC source — the open-addressing hashtable of Algorithm 2,
// written with no TM calls whatsoever — is compiled three ways, mirroring
// Section 7.2 of the paper:
//
//  1. plain tm_mark instrumentation on NOrec ("NOrec"),
//  2. pattern detection + tm_optimize with the semantic ABI delegated to
//     classical barriers ("NOrec Modified-GCC"), and
//  3. pattern detection + tm_optimize on S-NOrec ("S-NOrec").
//
// It prints what the passes did (S1R/S2R/SW conversions, removed reads) and
// then runs the same concurrent workload under each configuration.
//
// Run with: go run ./examples/gccmode [-threads 8] [-txns 500]
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"semstm/internal/txprogs"
)

func main() {
	threads := flag.Int("threads", 8, "worker goroutines")
	txns := flag.Int("txns", 500, "transactions per worker (10 table ops each)")
	flag.Parse()

	for _, mode := range txprogs.Modes() {
		vm, st, err := txprogs.Build(txprogs.HashtableSrc, mode)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s passes: %2d S1R, %d S2R, %2d SW, %2d reads removed\n",
			mode, st.S1R, st.S2R, st.SW, st.RemovedReads)

		start := time.Now()
		var wg sync.WaitGroup
		for t := 0; t < *threads; t++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				th := vm.NewThread(seed)
				for i := 0; i < *txns; i++ {
					if _, err := th.Call("txn10"); err != nil {
						panic(err)
					}
				}
			}(int64(t) + 1)
		}
		wg.Wait()
		elapsed := time.Since(start)

		sn := vm.Runtime().Stats()
		fmt.Printf("%-20s %8.0f tx/s  aborts %5.1f%%  (%d reads, %d cmps, %d incs)\n\n",
			"", float64(sn.Commits)/elapsed.Seconds(), sn.AbortRate(),
			sn.Reads, sn.Compares, sn.Incs)
	}
}
