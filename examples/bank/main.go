// Bank: the paper's money-transfer micro-benchmark as a standalone program.
//
// Threads transfer money between shared accounts; each transfer first runs
// an overdraft check. With the classical API the check pins the exact
// balance, so any concurrent deposit to the same account aborts the
// transfer; with the semantic API the transaction only needs "balance >=
// amount" to still hold at commit. The program runs the same workload under
// all four algorithms and prints throughput, abort rates, and the
// conservation check.
//
// Run with: go run ./examples/bank [-accounts 256] [-threads 8] [-transfers 3000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"semstm/stm"
)

func main() {
	accounts := flag.Int("accounts", 256, "number of accounts")
	threads := flag.Int("threads", 8, "worker goroutines")
	transfers := flag.Int("transfers", 3000, "transfers per worker")
	initial := flag.Int64("initial", 1000, "initial balance per account")
	flag.Parse()

	fmt.Printf("bank: %d accounts x %d, %d threads x %d transfers\n\n",
		*accounts, *initial, *threads, *transfers)
	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2} {
		run(algo, *accounts, *threads, *transfers, *initial)
	}
}

func run(algo stm.Algorithm, accounts, threads, transfers int, initial int64) {
	rt := stm.New(algo)
	accts := stm.NewVars(accounts, initial)

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from := accts[rng.Intn(accounts)]
				to := accts[rng.Intn(accounts)]
				amt := 1 + rng.Int63n(50)
				if from == to {
					continue
				}
				rt.Atomically(func(tx *stm.Tx) {
					if tx.GTE(from, amt) { // overdraft check
						tx.Dec(from, amt)
						tx.Inc(to, amt)
					}
				})
			}
		}(int64(t) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sum int64
	negative := false
	for _, a := range accts {
		v := a.Load()
		if v < 0 {
			negative = true
		}
		sum += v
	}
	want := int64(accounts) * initial
	if sum != want || negative {
		fmt.Fprintf(os.Stderr, "%s: INVARIANT VIOLATED (sum=%d want=%d negative=%v)\n",
			algo, sum, want, negative)
		os.Exit(1)
	}
	sn := rt.Stats()
	fmt.Printf("%-8s %8.0f tx/s  aborts %5.1f%%  (money conserved: %d)\n",
		algo, float64(sn.Commits)/elapsed.Seconds(), sn.AbortRate(), sum)
}
