// Joint account: the complex-expression extension in action.
//
// A joint account is solvent when the SUM of its two balances is positive,
// and a card is usable when EITHER of two limits has room — exactly the
// "x + y > 0" and "x > 0 || y > 0" expressions of the paper's Section 3 that
// the published algorithms stop short of (each clause is validated
// separately). This repository ships them as the CmpSum/CmpAny extension of
// the technical report: the whole expression is ONE fact, so transfers that
// move money between the halves, or spending that shifts which limit has
// room, no longer abort the checkers.
//
// The demo runs the same workload on S-NOrec (native expression facts) and
// NOrec (delegation to classical reads) and prints the abort gap.
//
// Run with: go run ./examples/jointaccount [-checkers 6] [-ops 4000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"semstm/stm"
)

func main() {
	checkers := flag.Int("checkers", 6, "checker goroutines")
	ops := flag.Int("ops", 4000, "check pairs per goroutine")
	flag.Parse()

	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec} {
		run(algo, *checkers, *ops)
	}
}

func run(algo stm.Algorithm, checkers, ops int) {
	rt := stm.New(algo)
	rt.SetYieldEvery(2)

	// The joint account: two halves, always solvent as a pair.
	a, b := stm.NewVar(500), stm.NewVar(500)
	// Two spending limits; at least one always has room.
	limitX, limitY := stm.NewVar(100), stm.NewVar(100)

	var falseAlarms atomic.Int64

	// A mover shuffles money between the halves (sum invariant) and room
	// between the limits (disjunction invariant) until the checkers finish.
	stop := make(chan struct{})
	var mover sync.WaitGroup
	mover.Add(1)
	go func() {
		defer mover.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Pace the mover: an unthrottled writer starves the long
			// value-based readers outright (a real NOrec hazard); pacing
			// keeps the comparison about aborts, not starvation.
			time.Sleep(200 * time.Microsecond)
			amt := 1 + rng.Int63n(50)
			rt.Atomically(func(tx *stm.Tx) {
				tx.Dec(a, amt)
				tx.Inc(b, amt) // sum conserved
			})
			rt.Atomically(func(tx *stm.Tx) {
				if tx.GT(limitX, 10) {
					tx.Dec(limitX, 10)
					tx.Inc(limitY, 10)
				} else {
					tx.Inc(limitX, 10)
					tx.Dec(limitY, 10)
				}
			})
		}
	}()

	var checkersWG sync.WaitGroup
	for c := 0; c < checkers; c++ {
		checkersWG.Add(1)
		go func() {
			defer checkersWG.Done()
			const batch = 16
			for i := 0; i < ops; i += batch {
				// An audit pass: one transaction re-checking both
				// invariants many times (a long reader, the worst case for
				// value-based validation).
				bad := stm.Run(rt, func(tx *stm.Tx) int64 {
					var alarms int64
					for j := 0; j < batch; j++ {
						// Solvency: one fact over the sum.
						if !tx.CmpSum(stm.OpGT, 0, a, b) {
							alarms++
						}
						// Usability: one fact over the disjunction.
						if !tx.CmpAny(
							stm.Cond{Var: limitX, Op: stm.OpGT, Operand: 0},
							stm.Cond{Var: limitY, Op: stm.OpGT, Operand: 0},
						) {
							alarms++
						}
					}
					return alarms
				})
				falseAlarms.Add(bad)
			}
		}()
	}
	checkersWG.Wait()
	close(stop)
	mover.Wait()

	sn := rt.Stats()
	fmt.Printf("%-8s checks=%d  false-alarms=%d  aborts=%.2f%%\n",
		algo, 2*checkers*ops, falseAlarms.Load(), sn.AbortRate())
}
