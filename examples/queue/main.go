// Queue: the array-based queue of Algorithm 3 as a producer/consumer
// pipeline.
//
// A correct concurrent queue should let an enqueuer and a dequeuer proceed
// in parallel when the queue is neither empty nor full. The classical TM
// encoding forbids it — the dequeuer's emptiness test reads both head and
// tail, so every enqueue aborts it. The semantic encoding tests emptiness
// with a conditional and advances the cursors with deferred increments,
// restoring the concurrency. The demo pipes work through the queue and
// reports how many aborts each algorithm paid for the same job.
//
// Run with: go run ./examples/queue [-items 20000] [-producers 4] [-consumers 4]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"semstm/internal/txds"
	"semstm/stm"
)

func main() {
	items := flag.Int("items", 20000, "total items to pipe through")
	producers := flag.Int("producers", 4, "producer goroutines")
	consumers := flag.Int("consumers", 4, "consumer goroutines")
	flag.Parse()

	for _, algo := range []stm.Algorithm{stm.NOrec, stm.SNOrec, stm.TL2, stm.STL2} {
		run(algo, *items, *producers, *consumers)
	}
}

func run(algo stm.Algorithm, items, producers, consumers int) {
	rt := stm.New(algo)
	q := txds.NewQueue(256)

	start := time.Now()
	var produced, consumed, checksum atomic.Int64
	var wg sync.WaitGroup

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				n := produced.Add(1)
				if n > int64(items) {
					return
				}
				for !stm.Run(rt, func(tx *stm.Tx) bool { return q.Enqueue(tx, n) }) {
					// queue full: let consumers drain
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < int64(items) {
				item, ok := int64(0), false
				rt.Atomically(func(tx *stm.Tx) { item, ok = q.Dequeue(tx) })
				if ok {
					consumed.Add(1)
					checksum.Add(item)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	want := int64(items) * int64(items+1) / 2
	sn := rt.Stats()
	fmt.Printf("%-8s piped %d items in %v  aborts %5.1f%%  (checksum ok: %v)\n",
		algo, items, elapsed.Round(time.Millisecond), sn.AbortRate(),
		checksum.Load() == want)
}
